"""The Array Storage Extensibility Interface (ASEI).

A back-end stores linearized array buffers as sequences of equal-size
chunks and answers three kinds of retrieval requests, in increasing order
of sophistication (dissertation section 6.1):

1. ``get_chunk``  — fetch one chunk (always required);
2. ``get_chunks`` — fetch a batch of chunk ids in one round trip
   (IN-list style; default implementation loops over ``get_chunk``);
3. ``get_chunk_ranges`` — fetch arithmetic ranges of chunk ids in one
   round trip (range-scan style; default expands to a batch).

Each back-end maintains a :class:`StorageStats` counter block so the
benchmarks can report *round trips* and *chunks transferred* — the
quantities the paper's experiments compare across strategies.
"""

from __future__ import annotations

import contextlib
import itertools
import threading
from concurrent.futures import Future
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.arrays.chunks import ChunkLayout, DEFAULT_CHUNK_BYTES
from repro.arrays.nma import ELEMENT_TYPES, NumericArray, dtype_code
from repro.arrays.proxy import ArrayProxy
from repro.exceptions import CorruptionError, StorageError
from repro.lifecycle import (
    check_deadline, current_deadline, run_with_deadline,
)
from repro import observability as obs
from repro.storage.bufferpool import shared_pool

#: Per-instance namespace tokens so many stores can share one buffer
#: pool without their (integer) array ids colliding.
_POOL_TOKENS = itertools.count(1)


class StorageStats:
    """Counters of back-end traffic, reset between measurements.

    Updates go through :meth:`count` under a lock so concurrent
    prefetch workers do not lose increments.
    """

    __slots__ = ("requests", "chunks_fetched", "bytes_fetched",
                 "arrays_stored", "aggregates_delegated",
                 "corrupt_chunks", "chunks_quarantined", "_lock")

    def __init__(self):
        self._lock = threading.Lock()
        self.reset()

    def reset(self):
        self.requests = 0
        self.chunks_fetched = 0
        self.bytes_fetched = 0
        self.arrays_stored = 0
        self.aggregates_delegated = 0
        self.corrupt_chunks = 0
        self.chunks_quarantined = 0

    def count(self, **deltas):
        """Atomically add the given deltas to the named counters."""
        with self._lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)

    def count_fetch(self, chunks, nbytes):
        """Record one fetch round trip; hot path, so no kwargs."""
        with self._lock:
            self.requests += 1
            self.chunks_fetched += chunks
            self.bytes_fetched += nbytes

    def snapshot(self):
        with self._lock:
            return {
                "requests": self.requests,
                "chunks_fetched": self.chunks_fetched,
                "bytes_fetched": self.bytes_fetched,
                "arrays_stored": self.arrays_stored,
                "aggregates_delegated": self.aggregates_delegated,
                "corrupt_chunks": self.corrupt_chunks,
                "chunks_quarantined": self.chunks_quarantined,
            }

    def __repr__(self):
        return "StorageStats(%r)" % (self.snapshot(),)


class ArrayMeta:
    """Descriptor of one stored array: shape, element type, layout."""

    __slots__ = ("array_id", "element_type", "shape", "layout")

    def __init__(self, array_id, element_type, shape, layout):
        self.array_id = array_id
        self.element_type = element_type
        self.shape = tuple(shape)
        self.layout = layout


class ArrayStore:
    """Abstract ASEI back-end.

    Concrete back-ends implement ``_write_chunk`` / ``_read_chunk`` and may
    override the batched and ranged readers when the underlying system can
    answer them in one round trip.  The public API works in terms of
    :class:`ArrayProxy` values and numpy chunk buffers.
    """

    #: Capability flags a back-end may override.
    supports_batch = False
    supports_ranges = False
    supports_aggregates = False
    #: Whether concurrent threads may call the retrieval methods.  A
    #: back-end declaring True enables the APR prefetch pipeline to
    #: overlap its fetches; False degrades async requests to synchronous
    #: ones (correct, just unoverlapped).
    thread_safe = False

    def __init__(self, chunk_bytes=DEFAULT_CHUNK_BYTES, buffer_pool=None,
                 default_strategy=None, faults=None,
                 verify_checksums=True):
        self.chunk_bytes = int(chunk_bytes)
        self.stats = StorageStats()
        #: Optional :class:`~repro.storage.faults.FaultPlan` injecting
        #: deterministic latency/errors into this store's operations.
        self.faults = faults
        self._meta: Dict[object, ArrayMeta] = {}
        self._next_id = 1
        self._default_resolver = None
        #: The chunk buffer pool this store participates in — the
        #: process-wide pool unless a private one is injected.
        self.buffer_pool = buffer_pool if buffer_pool is not None \
            else shared_pool()
        self._pool_token = next(_POOL_TOKENS)
        #: Default APR strategy for ``resolve()`` / proxy resolution
        #: (None -> the APR default).
        self.default_strategy = default_strategy
        #: Statistics of the most recent APR resolve against this store
        #: (set by the resolver; approximate under concurrency).
        self.last_resolve_stats = None
        #: Whether read paths verify per-chunk checksums when the
        #: back-end persists them (raising
        #: :class:`~repro.exceptions.CorruptionError` on mismatch).
        self.verify_checksums = bool(verify_checksums)
        #: Report of the most recent :meth:`verify` / :meth:`repair`
        #: scan, surfaced through ``SSDM.stats()``.
        self.last_verify = None

    # -- registration ---------------------------------------------------------

    def put(self, array, chunk_bytes=None):
        """Store a resident array; returns a whole-array proxy.

        ``array`` may be a NumericArray, numpy array, or nested lists.
        """
        if not isinstance(array, NumericArray):
            array = NumericArray(array)
        flat = np.ascontiguousarray(array.to_numpy()).reshape(-1)
        element_type = dtype_code(flat.dtype)
        chunk_bytes = chunk_bytes or self.chunk_bytes
        layout = ChunkLayout(flat.shape[0], flat.dtype.itemsize, chunk_bytes)
        array_id = self._allocate_id()
        meta = ArrayMeta(array_id, element_type, array.shape, layout)
        self._meta[array_id] = meta
        try:
            # all-or-nothing: the transaction hook lets transactional
            # back-ends make the chunk writes + metadata one atomic
            # unit, and _flush_chunks lets file back-ends order
            # data -> checksums -> metadata so a half-written array is
            # never registered (torn chunks stay unreachable orphans)
            with self._put_transaction(meta):
                for chunk_id, start, count in layout.chunk_slices():
                    if self.faults is not None:
                        self.faults.on_write()
                    self._write_chunk(
                        array_id, chunk_id, flat[start:start + count]
                    )
                self._flush_chunks(meta)
                self._register_meta(meta)
        except BaseException:
            self._meta.pop(array_id, None)
            raise
        self.stats.count(arrays_stored=1)
        # drop any stale pool entries under this id (defensive: ids may
        # be recycled by a reopened persistent store)
        self.invalidate_cached(array_id)
        return ArrayProxy(self, array_id, element_type, array.shape)

    def proxy(self, array_id):
        """A whole-array proxy for an already-stored array."""
        meta = self.meta(array_id)
        return ArrayProxy(self, array_id, meta.element_type, meta.shape)

    def meta(self, array_id):
        meta = self._meta.get(array_id)
        if meta is None:
            meta = self._load_meta(array_id)
            if meta is None:
                raise StorageError("unknown array id %r" % (array_id,))
            self._meta[array_id] = meta
        return meta

    def array_ids(self):
        return list(self._meta.keys())

    def _allocate_id(self):
        array_id = self._next_id
        self._next_id += 1
        return array_id

    # -- buffer-pool participation ------------------------------------------------

    def pool_key(self, array_id):
        """This array's namespace in the shared buffer pool."""
        return (self._pool_token, array_id)

    def invalidate_cached(self, array_id=None):
        """Drop pooled chunks of one array (or all of this store's).

        Called on writes and by SPARQL Update execution when an array
        value is deleted or replaced, so the pool never serves stale
        chunks for a recycled array id.
        """
        if self.buffer_pool is None:
            return
        if array_id is not None:
            self.buffer_pool.invalidate(self.pool_key(array_id))
            return
        for known_id in list(self._meta):
            self.buffer_pool.invalidate(self.pool_key(known_id))

    # -- retrieval (back-end contract) -----------------------------------------

    def get_chunk(self, array_id, chunk_id):
        """One chunk as a 1-D numpy array; one round trip."""
        check_deadline()
        meta = self.meta(array_id)
        started = obs._clock()
        if self.faults is not None:
            self.faults.on_read()
        data = self._count_corrupt(
            self._read_chunk, array_id, chunk_id
        )
        elapsed = obs._clock() - started
        obs.observe_span("chunk_fetch", elapsed,
                         chunks=1, bytes=data.nbytes)
        self.stats.count_fetch(1, data.nbytes)
        _observe_fetch(1, data.nbytes, elapsed)
        return data

    def get_chunks(self, array_id, chunk_ids):
        """A batch of chunks in one round trip (when supported).

        Returns {chunk_id: 1-D numpy array}.  The default implementation
        degrades to per-chunk requests, modelling a back-end without
        IN-list support.
        """
        if not self.supports_batch:
            return {cid: self.get_chunk(array_id, cid) for cid in chunk_ids}
        check_deadline()
        chunk_ids = list(chunk_ids)
        started = obs._clock()
        if self.faults is not None:
            self.faults.on_read(len(chunk_ids))
        result = self._count_corrupt(
            self._read_chunks, array_id, chunk_ids
        )
        nbytes = sum(a.nbytes for a in result.values())
        elapsed = obs._clock() - started
        obs.observe_span("chunk_fetch", elapsed,
                         chunks=len(result), bytes=nbytes)
        self.stats.count_fetch(len(result), nbytes)
        _observe_fetch(len(result), nbytes, elapsed)
        return result

    def get_chunk_ranges(self, array_id, ranges):
        """Chunks for arithmetic (first, last, step) id ranges, inclusive.

        One round trip per call when the back-end supports range scans;
        otherwise the ranges are expanded into a batch request.
        """
        if not self.supports_ranges:
            chunk_ids = []
            for first, last, step in ranges:
                chunk_ids.extend(range(first, last + 1, step))
            return self.get_chunks(array_id, chunk_ids)
        check_deadline()
        ranges = list(ranges)
        started = obs._clock()
        if self.faults is not None:
            self.faults.on_read(sum(
                (last - first) // step + 1
                for first, last, step in ranges
            ))
        result = self._count_corrupt(
            self._read_chunk_ranges, array_id, ranges
        )
        nbytes = sum(a.nbytes for a in result.values())
        elapsed = obs._clock() - started
        obs.observe_span("chunk_fetch", elapsed,
                         chunks=len(result), bytes=nbytes)
        self.stats.count_fetch(len(result), nbytes)
        _observe_fetch(len(result), nbytes, elapsed)
        return result

    # -- asynchronous retrieval (prefetch pipeline) ---------------------------------

    def get_chunks_async(self, array_id, chunk_ids, executor=None):
        """Schedule a batched fetch; returns a Future of {id: chunk}.

        On a ``thread_safe`` back-end the request runs on ``executor``
        so callers can overlap fetches; otherwise it completes
        synchronously (same result, no overlap).  The submitting
        thread's ambient deadline is carried into the worker, so a
        timed-out request's outstanding fetches abort instead of
        occupying pool workers.
        """
        chunk_ids = list(chunk_ids)
        if executor is not None and self.thread_safe:
            return executor.submit(
                _run_adopted, obs.capture(), current_deadline(),
                self.get_chunks, array_id, chunk_ids,
            )
        return _completed(self.get_chunks, array_id, chunk_ids)

    def get_chunk_ranges_async(self, array_id, ranges, executor=None):
        """Schedule a range fetch; returns a Future of {id: chunk}."""
        ranges = [tuple(r) for r in ranges]
        if executor is not None and self.thread_safe:
            return executor.submit(
                _run_adopted, obs.capture(), current_deadline(),
                self.get_chunk_ranges, array_id, ranges,
            )
        return _completed(self.get_chunk_ranges, array_id, ranges)

    def aggregate(self, array_id, op):
        """Whole-array aggregate computed back-end-side (AAPR delegation).

        ``op`` is one of 'sum', 'avg', 'min', 'max'.  Back-ends with
        ``supports_aggregates`` evaluate without shipping chunks to the
        client; the base implementation raises.
        """
        raise StorageError(
            "back-end %s cannot delegate aggregates"
            % type(self).__name__
        )

    def _count_corrupt(self, read, *args):
        """Run one read, counting checksum failures in the stats."""
        try:
            return read(*args)
        except CorruptionError:
            self.stats.count(corrupt_chunks=1)
            raise

    # -- integrity scanning (durability layer) ---------------------------------

    def verify(self, array_id=None, repair=False):
        """Scan stored chunks against their checksums; returns a report.

        Every chunk of every known array (or of one ``array_id``) is
        read through the back-end's verifying read path.  The report
        maps the outcome::

            {"arrays_checked": n, "chunks_checked": n, "ok": n,
             "corrupt": [[array_id, chunk_id], ...],
             "missing": [[array_id, chunk_id-or-None], ...],
             "quarantined": [[array_id, chunk_id], ...]}

        With ``repair=True`` corrupt/missing chunks are quarantined via
        the back-end's :meth:`_quarantine_chunk` (moved out of the way
        so later reads fail fast with a *missing* error instead of
        re-reading bad bytes), and their buffer-pool entries dropped.
        The report is kept as :attr:`last_verify` and the corruption
        counters land in :attr:`stats`.
        """
        ids = [array_id] if array_id is not None else self._all_array_ids()
        report = {
            "arrays_checked": 0, "chunks_checked": 0, "ok": 0,
            "corrupt": [], "missing": [], "quarantined": [],
        }
        for aid in ids:
            try:
                meta = self.meta(aid)
            except StorageError:
                report["missing"].append([aid, None])
                continue
            report["arrays_checked"] += 1
            for chunk_id in range(meta.layout.chunk_count):
                report["chunks_checked"] += 1
                try:
                    # the raw read path: verifies checksums but skips
                    # deadline polling and traffic accounting (this is
                    # an administrative scan, not query traffic)
                    self._read_chunk(aid, chunk_id)
                except CorruptionError:
                    report["corrupt"].append([aid, chunk_id])
                except StorageError:
                    report["missing"].append([aid, chunk_id])
                else:
                    report["ok"] += 1
        if repair:
            damaged = report["corrupt"] + [
                entry for entry in report["missing"]
                if entry[1] is not None
            ]
            for aid, chunk_id in damaged:
                if self._quarantine_chunk(aid, chunk_id):
                    report["quarantined"].append([aid, chunk_id])
                    self.invalidate_cached(aid)
        self.stats.count(
            corrupt_chunks=len(report["corrupt"]),
            chunks_quarantined=len(report["quarantined"]),
        )
        self.last_verify = report
        return report

    def repair(self, array_id=None):
        """Scan and quarantine bad chunks; returns the verify report."""
        return self.verify(array_id=array_id, repair=True)

    def _all_array_ids(self):
        """Every array id this store knows of (back-ends with persistent
        metadata override to include arrays not yet loaded)."""
        return list(self._meta)

    def _quarantine_chunk(self, array_id, chunk_id):
        """Move one bad chunk out of the read path; returns True when
        something was quarantined.  Default: back-end cannot."""
        return False

    def _put_transaction(self, meta):
        """Context manager making one ``put`` atomic (default no-op)."""
        return contextlib.nullcontext()

    def _flush_chunks(self, meta):
        """Hook after a put's chunk writes, before metadata registration
        (file back-ends fsync data and persist checksums here)."""

    def _fault_read_bytes(self, raw):
        """Apply at-rest read corruption from the fault plan (bit
        flips), *before* checksum verification."""
        if self.faults is not None:
            return self.faults.mangle_read(raw)
        return raw

    def _fault_write_bytes(self, payload):
        """Apply torn-write injection; returns (bytes, crash_after)."""
        if self.faults is not None:
            return self.faults.mangle_write(payload)
        return payload, False

    # -- resolution -----------------------------------------------------------

    def resolve(self, proxies, strategy=None, buffer_size=None):
        """Resolve proxies to resident arrays with the default APR setup."""
        from repro.storage.apr import APRResolver

        if strategy is None and buffer_size is None:
            if self._default_resolver is None:
                kwargs = {}
                if self.default_strategy is not None:
                    kwargs["strategy"] = self.default_strategy
                self._default_resolver = APRResolver(self, **kwargs)
            resolver = self._default_resolver
        else:
            kwargs = {}
            if strategy is not None:
                kwargs["strategy"] = strategy
            if buffer_size is not None:
                kwargs["buffer_size"] = buffer_size
            resolver = APRResolver(self, **kwargs)
        return resolver.resolve(proxies)

    # -- subclass responsibilities ----------------------------------------------

    def _write_chunk(self, array_id, chunk_id, data):
        raise NotImplementedError

    def _read_chunk(self, array_id, chunk_id):
        raise NotImplementedError

    def _read_chunks(self, array_id, chunk_ids):
        raise NotImplementedError

    def _read_chunk_ranges(self, array_id, ranges):
        raise NotImplementedError

    def _register_meta(self, meta):
        """Hook for back-ends persisting array metadata."""

    def _load_meta(self, array_id):
        """Hook for back-ends that can recover metadata from persistence."""
        return None


def _completed(fn, *args):
    """A Future resolved synchronously with fn(*args) (or its error)."""
    future = Future()
    try:
        future.set_result(fn(*args))
    except Exception as error:  # propagate through the future contract
        future.set_exception(error)
    return future


def _run_adopted(trace_ctx, deadline, fn, *args):
    """Run a pool worker under the submitting request's trace + deadline.

    Worker threads inherit no thread-local state, so both the ambient
    deadline and the (trace, span) context are captured at submit time
    and re-installed here — a prefetch worker's ``chunk_fetch`` spans
    accumulate under the operator that demanded the chunks.  Its wall
    times sum *across* workers, so an aggregate span's elapsed reads as
    total I/O time, which may exceed the query's wall clock when
    fetches overlap.
    """
    with obs.activate(trace_ctx):
        return run_with_deadline(deadline, fn, *args)


def _observe_fetch(chunks, nbytes, seconds):
    """Feed one fetch round trip into the process-wide metrics."""
    registry = obs.metrics()
    registry.inc("storage_fetch_requests_total")
    registry.inc("storage_chunks_fetched_total", chunks)
    registry.inc("storage_bytes_fetched_total", nbytes)
    registry.observe("storage_fetch_seconds", seconds)
