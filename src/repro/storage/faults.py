"""Deterministic fault injection for ASEI back-ends.

Robustness features (deadlines, retries, typed storage errors) are only
trustworthy if they can be exercised deterministically.  A
:class:`FaultPlan` attached to any :class:`~repro.storage.asei.ArrayStore`
(the ``faults=`` constructor argument, or assigned to ``store.faults``)
injects two kinds of misbehaviour into the store's read/write paths:

- **Latency** — ``read_latency`` / ``write_latency`` seconds *per chunk*
  touched by an operation.  The sleep is cooperative: when the calling
  thread carries an ambient :class:`~repro.lifecycle.Deadline`, an
  expiring budget interrupts the sleep with a
  :class:`~repro.exceptions.RequestTimeoutError`, which is exactly how a
  slow real back-end behaves under the request lifecycle.
- **Errors** — ``error_every=N`` fails every Nth read operation
  (fully deterministic), and ``error_rate=p`` fails each read with
  probability ``p`` drawn from a seeded private RNG (deterministic
  *sequence* for a fixed seed).

Injection happens per *operation* (one round trip) for errors and per
*chunk* for latency, mirroring how real transports charge: a batched
IN-list read is one failure domain but its transfer time grows with the
number of chunks shipped.
"""

from __future__ import annotations

import random
import threading
import time

from repro.exceptions import StorageError
from repro.lifecycle import current_deadline


class FaultPlan:
    """Configurable per-op latency and error injection for one store.

    Thread-safe: the APR prefetch pipeline calls into stores from
    multiple worker threads, and counters must not lose increments.

    >>> plan = FaultPlan(error_every=2)
    >>> plan.on_read()           # op 1: fine
    >>> try:
    ...     plan.on_read()       # op 2: injected failure
    ... except Exception as e:
    ...     print(type(e).__name__)
    StorageError
    """

    def __init__(self, read_latency=0.0, write_latency=0.0,
                 error_every=0, error_rate=0.0, seed=0x5EED):
        self.read_latency = float(read_latency)
        self.write_latency = float(write_latency)
        self.error_every = int(error_every)
        self.error_rate = float(error_rate)
        self._random = random.Random(seed)
        self._lock = threading.Lock()
        self.reads = 0
        self.writes = 0
        self.injected_errors = 0
        self.slept_seconds = 0.0

    # -- hooks called by the ASEI base class ---------------------------------------

    def on_read(self, chunk_count=1):
        """Apply read faults for one operation touching ``chunk_count``
        chunks; called by the ASEI retrieval methods before the read."""
        with self._lock:
            self.reads += 1
            op = self.reads
            fail = self._decide_locked(op)
        self._sleep(self.read_latency * max(1, int(chunk_count)))
        if fail:
            with self._lock:
                self.injected_errors += 1
            raise StorageError(
                "injected fault on read op %d" % op
            )

    def on_write(self, chunk_count=1):
        """Apply write latency for one operation (writes never fail —
        update durability is out of scope for the shim)."""
        with self._lock:
            self.writes += 1
        self._sleep(self.write_latency * max(1, int(chunk_count)))

    # -- internals -----------------------------------------------------------------

    def _decide_locked(self, op):
        if self.error_every and op % self.error_every == 0:
            return True
        if self.error_rate and self._random.random() < self.error_rate:
            return True
        return False

    def _sleep(self, seconds):
        if seconds <= 0:
            return
        deadline = current_deadline()
        started = time.monotonic()
        try:
            if deadline is not None:
                deadline.sleep(seconds)
            else:
                time.sleep(seconds)
        finally:
            with self._lock:
                self.slept_seconds += time.monotonic() - started

    # -- reporting -----------------------------------------------------------------

    def snapshot(self):
        with self._lock:
            return {
                "reads": self.reads,
                "writes": self.writes,
                "injected_errors": self.injected_errors,
                "slept_seconds": self.slept_seconds,
            }

    def __repr__(self):
        return "FaultPlan(%r)" % (self.snapshot(),)
