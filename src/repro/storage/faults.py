"""Deterministic fault injection for ASEI back-ends.

Robustness features (deadlines, retries, typed storage errors) are only
trustworthy if they can be exercised deterministically.  A
:class:`FaultPlan` attached to any :class:`~repro.storage.asei.ArrayStore`
(the ``faults=`` constructor argument, or assigned to ``store.faults``)
injects two kinds of misbehaviour into the store's read/write paths:

- **Latency** — ``read_latency`` / ``write_latency`` seconds *per chunk*
  touched by an operation.  The sleep is cooperative: when the calling
  thread carries an ambient :class:`~repro.lifecycle.Deadline`, an
  expiring budget interrupts the sleep with a
  :class:`~repro.exceptions.RequestTimeoutError`, which is exactly how a
  slow real back-end behaves under the request lifecycle.
- **Errors** — ``error_every=N`` fails every Nth read operation
  (fully deterministic), and ``error_rate=p`` fails each read with
  probability ``p`` drawn from a seeded private RNG (deterministic
  *sequence* for a fixed seed).

Injection happens per *operation* (one round trip) for errors and per
*chunk* for latency, mirroring how real transports charge: a batched
IN-list read is one failure domain but its transfer time grows with the
number of chunks shipped.

For the durability layer (WAL journal, checksummed chunk storage) the
plan additionally injects *storage corruption* and *simulated crashes*,
so every recovery path is deterministically testable:

- **Crash points** — ``crash_after_wal`` / ``crash_before_wal`` raise
  :class:`SimulatedCrash` at the named point of the update path (the
  journal calls :meth:`crash_point`).  A test catches the crash, drops
  the in-memory state, and reopens from disk — exactly the
  kill-the-process experiment, without forking.
- **Torn writes** — ``torn_write=N`` truncates the payload of the Nth
  durable write (chunk or WAL record) to half its length and schedules
  a crash immediately after, modelling power loss mid-``write(2)``.
- **Bit flips** — ``bit_flip_rate=p`` flips one random bit of a read
  payload with seeded probability ``p`` *before* checksum verification,
  modelling at-rest corruption; the checksummed read paths must turn it
  into a typed ``CORRUPT`` error, never a wrong answer.

For the replication layer the plan also models the *network* between
peers, so failover tests can partition, slow down, or flap individual
links deterministically.  A peer is the ``"host:port"`` string of one
endpoint; :class:`~repro.client.SSDMClient` (and therefore the
replication stream and the replica-set client riding on it) calls
:meth:`on_network` before every request it sends:

- :meth:`partition` / :meth:`heal` — requests to a partitioned peer
  raise :class:`~repro.exceptions.ConnectionClosedError` until the
  link heals, modelling a symmetric network partition;
- :meth:`drop_requests` — the next N requests to a peer fail with
  ``ConnectionClosedError`` (transient loss: retries can succeed);
- :meth:`delay_peer` — every request to a peer sleeps first
  (cooperatively, like the storage latencies above), modelling a slow
  or congested link.
"""

from __future__ import annotations

import random
import threading
import time

from repro.exceptions import StorageError
from repro.lifecycle import current_deadline
from repro import observability as obs


class SimulatedCrash(RuntimeError):
    """An injected process death (see :class:`FaultPlan` crash points).

    Deliberately *not* a :class:`~repro.exceptions.SciSparqlError`: no
    retry/suppression machinery may swallow it — the test harness
    catches it, abandons the instance, and recovers from disk.
    """


class FaultPlan:
    """Configurable per-op latency and error injection for one store.

    Thread-safe: the APR prefetch pipeline calls into stores from
    multiple worker threads, and counters must not lose increments.

    >>> plan = FaultPlan(error_every=2)
    >>> plan.on_read()           # op 1: fine
    >>> try:
    ...     plan.on_read()       # op 2: injected failure
    ... except Exception as e:
    ...     print(type(e).__name__)
    StorageError
    """

    def __init__(self, read_latency=0.0, write_latency=0.0,
                 error_every=0, error_rate=0.0, seed=0x5EED,
                 crash_after_wal=False, crash_before_wal=False,
                 crash_points=(), point_delays=None,
                 torn_write=0, bit_flip_rate=0.0, memory_pressure=None):
        self.read_latency = float(read_latency)
        self.write_latency = float(write_latency)
        self.error_every = int(error_every)
        self.error_rate = float(error_rate)
        self.crash_after_wal = bool(crash_after_wal)
        self.crash_before_wal = bool(crash_before_wal)
        #: Named update-path points that crash when reached (see
        #: :meth:`crash_point`): beyond the legacy WAL booleans, the
        #: MVCC write path wires ``consolidate`` (inside index
        #: consolidation, before the publish-then-swap) and ``publish``
        #: (before a dataset version is installed).
        self.crash_points = set(crash_points)
        #: ``point name -> seconds`` cooperative delay applied whenever
        #: the point is reached (before any armed crash fires), so races
        #: around consolidation/publication windows widen on demand.
        self.point_delays = dict(point_delays or {})
        #: 1-based index of the durable write whose payload is torn
        #: (0 = disabled); a crash follows the truncated write.
        self.torn_write = int(torn_write)
        self.bit_flip_rate = float(bit_flip_rate)
        self.memory_pressure = None
        if memory_pressure is not None:
            self.set_memory_pressure(memory_pressure)
        self._random = random.Random(seed)
        self._lock = threading.Lock()
        self.reads = 0
        self.writes = 0
        self.injected_errors = 0
        self.slept_seconds = 0.0
        self.durable_writes = 0
        self.torn_writes = 0
        self.bit_flips = 0
        self.crashes = 0
        self._partitioned = set()
        self._peer_delay = {}
        self._peer_drops = {}
        self.net_requests = 0
        self.net_blocked = 0
        self.net_dropped = 0

    def set_memory_pressure(self, value):
        """Pin the process governor's pressure signal to ``value``.

        Deterministically trips the governor's degradation ladder
        (speculation off, buffer-pool soft limit shrunk) without
        allocating real memory.  ``None`` (or 0) releases the pin.
        Process-global by nature — tests must reset it on the way out.
        """
        from repro.governor import get_governor

        self.memory_pressure = None if value is None else float(value)
        get_governor().set_forced_pressure(self.memory_pressure or 0.0)

    # -- hooks called by the ASEI base class ---------------------------------------

    def on_read(self, chunk_count=1):
        """Apply read faults for one operation touching ``chunk_count``
        chunks; called by the ASEI retrieval methods before the read."""
        with self._lock:
            self.reads += 1
            op = self.reads
            fail = self._decide_locked(op)
        self._sleep(self.read_latency * max(1, int(chunk_count)))
        if fail:
            with self._lock:
                self.injected_errors += 1
            obs.event("fault_injected", kind="read_error", op=op)
            raise StorageError(
                "injected fault on read op %d" % op
            )

    def on_write(self, chunk_count=1):
        """Apply write latency for one operation (write *failures* are
        injected at the payload level via :meth:`mangle_write`)."""
        with self._lock:
            self.writes += 1
        self._sleep(self.write_latency * max(1, int(chunk_count)))

    # -- durability faults (called by journal and store write/read paths) ----------

    def crash_point(self, name):
        """Simulate process death at a named point of the update path.

        Points currently wired: ``before_wal`` (before the journal
        record is appended), ``after_wal`` (record durable, mutation
        not yet applied), ``consolidate`` (inside pending-delta
        consolidation, before new indexes are swapped in) and
        ``publish`` (before a dataset version is installed).  The
        legacy booleans arm the WAL points; any name listed in
        ``crash_points`` is armed as well.
        """
        armed = (
            (name == "after_wal" and self.crash_after_wal)
            or (name == "before_wal" and self.crash_before_wal)
            or name in self.crash_points
        )
        if armed:
            with self._lock:
                self.crashes += 1
            obs.event("fault_injected", kind="crash", point=name)
            raise SimulatedCrash("injected crash at %s" % name)

    def at_point(self, name):
        """Latency-then-crash hook for one named update-path point.

        Applies the point's configured cooperative delay first (so
        tests can hold a writer inside a consolidation or publication
        window while readers run), then fires :meth:`crash_point`.
        """
        delay = self.point_delays.get(name, 0.0)
        if delay:
            self._sleep(delay)
        self.crash_point(name)

    def mangle_write(self, payload):
        """Apply torn-write injection to one durable write payload.

        Returns ``(payload, crash_after)``: the (possibly truncated)
        bytes the caller must actually write, and whether it must raise
        :class:`SimulatedCrash` immediately after writing them.
        """
        with self._lock:
            self.durable_writes += 1
            if self.torn_write and self.durable_writes == self.torn_write:
                self.torn_writes += 1
                self.crashes += 1
                torn = payload[: len(payload) // 2]
                obs.event("fault_injected", kind="torn_write",
                          write=self.durable_writes)
                return torn, True
        return payload, False

    def mangle_read(self, payload):
        """Maybe flip one bit of a read payload (at-rest corruption).

        Runs *before* checksum verification in the store read paths, so
        an injected flip must surface as a ``CORRUPT`` error.
        """
        if not self.bit_flip_rate or not payload:
            return payload
        with self._lock:
            if self._random.random() >= self.bit_flip_rate:
                return payload
            position = self._random.randrange(len(payload))
            bit = 1 << self._random.randrange(8)
            self.bit_flips += 1
        mutable = bytearray(payload)
        mutable[position] ^= bit
        return bytes(mutable)

    # -- network faults (called by the client transport per request) ---------------

    def partition(self, *peers):
        """Cut the link to each ``"host:port"`` peer until healed."""
        with self._lock:
            self._partitioned.update(peers)

    def heal(self, *peers):
        """Restore the link to the given peers (all when none given)."""
        with self._lock:
            if not peers:
                self._partitioned.clear()
            else:
                self._partitioned.difference_update(peers)

    def delay_peer(self, peer, seconds):
        """Sleep ``seconds`` before every request to ``peer`` (0 clears)."""
        with self._lock:
            if seconds:
                self._peer_delay[peer] = float(seconds)
            else:
                self._peer_delay.pop(peer, None)

    def drop_requests(self, peer, count):
        """Fail the next ``count`` requests to ``peer`` as connection loss."""
        with self._lock:
            self._peer_drops[peer] = int(count)

    def on_network(self, peer):
        """Apply network faults for one request to ``peer``.

        Raises :class:`~repro.exceptions.ConnectionClosedError` when the
        link is partitioned or the request is dropped, after applying
        any configured per-peer delay (cooperative with deadlines, like
        the storage latencies).
        """
        from repro.exceptions import ConnectionClosedError

        with self._lock:
            self.net_requests += 1
            delay = self._peer_delay.get(peer, 0.0)
            if peer in self._partitioned:
                self.net_blocked += 1
                failure = ConnectionClosedError(
                    "injected network partition to %s" % peer
                )
            elif self._peer_drops.get(peer, 0) > 0:
                self._peer_drops[peer] -= 1
                self.net_dropped += 1
                failure = ConnectionClosedError(
                    "injected request drop to %s" % peer
                )
            else:
                failure = None
        self._sleep(delay)
        if failure is not None:
            obs.event("fault_injected", kind="network", peer=peer)
            raise failure

    # -- internals -----------------------------------------------------------------

    def _decide_locked(self, op):
        if self.error_every and op % self.error_every == 0:
            return True
        if self.error_rate and self._random.random() < self.error_rate:
            return True
        return False

    def _sleep(self, seconds):
        if seconds <= 0:
            return
        deadline = current_deadline()
        started = time.monotonic()
        try:
            if deadline is not None:
                deadline.sleep(seconds)
            else:
                time.sleep(seconds)
        finally:
            with self._lock:
                self.slept_seconds += time.monotonic() - started

    # -- reporting -----------------------------------------------------------------

    def snapshot(self):
        with self._lock:
            return {
                "reads": self.reads,
                "writes": self.writes,
                "injected_errors": self.injected_errors,
                "slept_seconds": self.slept_seconds,
                "durable_writes": self.durable_writes,
                "torn_writes": self.torn_writes,
                "bit_flips": self.bit_flips,
                "crashes": self.crashes,
                "net_requests": self.net_requests,
                "net_blocked": self.net_blocked,
                "net_dropped": self.net_dropped,
                "memory_pressure": self.memory_pressure,
            }

    def __repr__(self):
        return "FaultPlan(%r)" % (self.snapshot(),)
