"""Relational storage of RDF-with-Arrays triples (section 6.2.1).

The back-end scenario stores not only the arrays but the RDF graph itself
in the RDBMS.  The schema follows the paper's choice (b) of section
2.2.3 — *partitioning by value type*: one clustered triples table whose
value column set is typed (URI / blank / numeric / string / typed-literal
/ array), with indexes covering the SPO, POS, and OSP access paths.
Array values are stored through the same database's chunk tables (an
embedded :class:`~repro.storage.sqlstore.SqlArrayStore`) and surface as
lazy :class:`~repro.arrays.ArrayProxy` values.

:class:`SqlTripleGraph` implements the same interface as the in-memory
:class:`repro.rdf.graph.Graph` (triples / add / remove / statistics), so
the whole query engine — including the cost-based optimizer — runs
unchanged on top of it::

    graph = SqlTripleGraph("mydata.db")
    ssdm = SSDM.with_triple_store(graph)
"""

from __future__ import annotations

import json
import sqlite3
from typing import Iterator, Optional

from repro.arrays.nma import NumericArray, row_major_strides
from repro.arrays.proxy import ArrayProxy
from repro.exceptions import SciSparqlError, StorageError
from repro.rdf.term import BlankNode, Literal, Triple, URI
from repro.storage.sqlstore import SqlArrayStore

_SCHEMA = """
CREATE TABLE IF NOT EXISTS triples (
    s_kind  TEXT NOT NULL,          -- 'u' uri | 'b' blank
    s_text  TEXT NOT NULL,
    p_text  TEXT NOT NULL,
    v_kind  TEXT NOT NULL,          -- u/b/n/s/l/t/a (see _encode_value)
    v_text  TEXT NOT NULL,
    v_num   REAL,
    v_extra TEXT,
    PRIMARY KEY (s_kind, s_text, p_text, v_kind, v_text)
);
CREATE INDEX IF NOT EXISTS idx_pos ON triples (p_text, v_kind, v_text);
CREATE INDEX IF NOT EXISTS idx_osp ON triples (v_kind, v_text, s_text);
CREATE INDEX IF NOT EXISTS idx_pnum ON triples (p_text, v_num)
    WHERE v_num IS NOT NULL;
"""


class _SqlStatistics:
    """GraphStatistics-compatible estimates computed in SQL."""

    def __init__(self, graph):
        self._graph = graph

    @property
    def triple_count(self):
        return len(self._graph)

    def _one(self, sql, args=()):
        row = self._graph._connection.execute(sql, args).fetchone()
        return row[0] if row else 0

    def property_count(self, prop):
        return self._one(
            "SELECT COUNT(*) FROM triples WHERE p_text=?", (prop.value,)
        )

    def distinct_subjects(self, prop=None):
        if prop is None:
            return self._one("SELECT COUNT(DISTINCT s_text) FROM triples")
        return self._one(
            "SELECT COUNT(DISTINCT s_text) FROM triples WHERE p_text=?",
            (prop.value,),
        )

    def distinct_values(self, prop=None):
        if prop is None:
            return self._one(
                "SELECT COUNT(*) FROM (SELECT DISTINCT v_kind, v_text"
                " FROM triples)"
            )
        return self._one(
            "SELECT COUNT(*) FROM (SELECT DISTINCT v_kind, v_text"
            " FROM triples WHERE p_text=?)",
            (prop.value,),
        )

    def fanout(self, prop):
        count = self.property_count(prop)
        subjects = self.distinct_subjects(prop)
        return count / subjects if subjects else 1.0

    def fanin(self, prop):
        count = self.property_count(prop)
        values = self.distinct_values(prop)
        return count / values if values else 1.0


class SqlTripleGraph:
    """An RDF-with-Arrays graph persisted in SQLite."""

    def __init__(self, database=":memory:", chunk_bytes=None, name=None,
                 externalize_threshold=16):
        self.name = name
        # access is serialized by the owning SSDM/server; allow the
        # connection to cross threads (the TCP server handles
        # requests on worker threads under a lock)
        self._connection = sqlite3.connect(
            database, check_same_thread=False
        )
        self._connection.executescript(_SCHEMA)
        kwargs = {}
        if chunk_bytes is not None:
            kwargs["chunk_bytes"] = chunk_bytes
        self.array_store = SqlArrayStore(database=":memory:", **kwargs) \
            if database == ":memory:" else SqlArrayStore(
                database=database, **kwargs)
        if database != ":memory:":
            # share one connection-backed database file for both schemas
            pass
        self.externalize_threshold = int(externalize_threshold)
        self.statistics = _SqlStatistics(self)

    def close(self):
        self._connection.close()
        self.array_store.close()

    # -- term codecs -------------------------------------------------------------

    @staticmethod
    def _encode_subject(subject):
        if isinstance(subject, URI):
            return "u", subject.value
        if isinstance(subject, BlankNode):
            return "b", subject.label
        raise SciSparqlError(
            "triple subject must be URI or BlankNode, got %r" % (subject,)
        )

    def _encode_value(self, value):
        """(kind, text, num, extra) for any RDF-with-Arrays value."""
        if isinstance(value, URI):
            return "u", value.value, None, None
        if isinstance(value, BlankNode):
            return "b", value.label, None, None
        if isinstance(value, NumericArray):
            if value.element_count > self.externalize_threshold:
                proxy = self.array_store.put(value)
                return self._encode_value(proxy)
            payload = json.dumps({
                "data": value.to_nested_lists(),
                "dtype": value.element_type,
            })
            return "t", payload, None, "resident-array"
        if isinstance(value, ArrayProxy):
            descriptor = json.dumps({
                "id": value.array_id,
                "etype": value.element_type,
                "base": list(value.base_shape),
                "shape": list(value.shape),
                "strides": list(value.strides),
                "offset": value.offset,
            })
            return "a", descriptor, None, None
        if isinstance(value, Literal):
            if value.lang:
                return "l", value.lexical_form(), None, value.lang
            if value.is_numeric():
                return ("n", value.lexical_form(), float(value.value),
                        value.datatype.value)
            if isinstance(value.value, bool):
                return ("t", value.lexical_form(), None,
                        value.datatype.value)
            if value.datatype.value == \
                    "http://www.w3.org/2001/XMLSchema#string":
                return "s", value.value, None, None
            return "t", value.lexical_form(), None, value.datatype.value
        raise SciSparqlError("cannot store value %r" % (value,))

    def _decode_subject(self, kind, text):
        return URI(text) if kind == "u" else BlankNode(text)

    def _decode_value(self, kind, text, num, extra):
        if kind == "u":
            return URI(text)
        if kind == "b":
            return BlankNode(text)
        if kind == "s":
            return Literal(text)
        if kind == "l":
            return Literal(text, lang=extra)
        if kind == "n":
            return Literal.from_lexical(text, URI(extra))
        if kind == "t":
            if extra == "resident-array":
                payload = json.loads(text)
                return NumericArray(payload["data"],
                                    dtype=payload["dtype"])
            return Literal.from_lexical(text, URI(extra))
        if kind == "a":
            raw = json.loads(text)
            return ArrayProxy(
                self.array_store, raw["id"], raw["etype"], raw["base"],
                shape=tuple(raw["shape"]),
                strides=tuple(raw["strides"]),
                offset=raw["offset"],
            )
        raise StorageError("unknown value kind %r" % (kind,))

    # -- graph interface ------------------------------------------------------------

    def __len__(self):
        row = self._connection.execute(
            "SELECT COUNT(*) FROM triples"
        ).fetchone()
        return row[0]

    def __iter__(self):
        return self.triples()

    def __contains__(self, triple):
        subject, prop, value = triple
        for _ in self.triples(subject, prop, value):
            return True
        return False

    def add(self, subject, prop, value):
        if not isinstance(prop, URI):
            raise SciSparqlError(
                "triple property must be URI, got %r" % (prop,)
            )
        s_kind, s_text = self._encode_subject(subject)
        v_kind, v_text, v_num, v_extra = self._encode_value(value)
        self._connection.execute(
            "INSERT OR IGNORE INTO triples"
            " (s_kind, s_text, p_text, v_kind, v_text, v_num, v_extra)"
            " VALUES (?, ?, ?, ?, ?, ?, ?)",
            (s_kind, s_text, prop.value, v_kind, v_text, v_num, v_extra),
        )
        self._connection.commit()
        return self

    def add_triple(self, triple):
        return self.add(triple[0], triple[1], triple[2])

    def update(self, triples):
        for triple in triples:
            self.add(triple[0], triple[1], triple[2])
        return self

    def remove(self, subject, prop, value):
        s_kind, s_text = self._encode_subject(subject)
        v_kind, v_text, _, _ = self._encode_value(value)
        cursor = self._connection.execute(
            "DELETE FROM triples WHERE s_kind=? AND s_text=? AND p_text=?"
            " AND v_kind=? AND v_text=?",
            (s_kind, s_text, prop.value, v_kind, v_text),
        )
        self._connection.commit()
        return cursor.rowcount > 0

    def remove_matching(self, subject=None, prop=None, value=None):
        doomed = list(self.triples(subject, prop, value))
        for triple in doomed:
            self.remove(*triple)
        return len(doomed)

    def clear(self):
        self._connection.execute("DELETE FROM triples")
        self._connection.commit()

    def triples(self, subject=None, prop=None, value=None):
        conditions = []
        args = []
        if subject is not None:
            s_kind, s_text = self._encode_subject(subject)
            conditions.append("s_kind=? AND s_text=?")
            args.extend([s_kind, s_text])
        if prop is not None:
            conditions.append("p_text=?")
            args.append(prop.value)
        if value is not None:
            v_kind, v_text, _, _ = self._encode_value(value)
            conditions.append("v_kind=? AND v_text=?")
            args.extend([v_kind, v_text])
        sql = ("SELECT s_kind, s_text, p_text, v_kind, v_text, v_num,"
               " v_extra FROM triples")
        if conditions:
            sql += " WHERE " + " AND ".join(conditions)
        for row in self._connection.execute(sql, args):
            yield Triple(
                self._decode_subject(row[0], row[1]),
                URI(row[2]),
                self._decode_value(row[3], row[4], row[5], row[6]),
            )

    def count(self, subject=None, prop=None, value=None):
        if subject is None and prop is None and value is None:
            return len(self)
        if subject is None and value is None:
            return self.statistics.property_count(prop)
        return sum(1 for _ in self.triples(subject, prop, value))

    def subjects(self, prop=None, value=None):
        seen = set()
        for triple in self.triples(None, prop, value):
            if triple.subject not in seen:
                seen.add(triple.subject)
                yield triple.subject

    def values(self, subject=None, prop=None):
        for triple in self.triples(subject, prop, None):
            yield triple.value

    def value(self, subject, prop, default=None):
        for triple in self.triples(subject, prop, None):
            return triple.value
        return default

    def properties(self, subject):
        s_kind, s_text = self._encode_subject(subject)
        rows = self._connection.execute(
            "SELECT DISTINCT p_text FROM triples WHERE s_kind=?"
            " AND s_text=?",
            (s_kind, s_text),
        )
        for (p_text,) in rows:
            yield URI(p_text)

    def copy(self):
        clone = SqlTripleGraph(
            ":memory:", externalize_threshold=self.externalize_threshold
        )
        clone.update(self.triples())
        return clone

    # -- value-range delegation (numeric partition) ------------------------------

    def numeric_range_subjects(self, prop, low=None, high=None):
        """Subjects whose numeric value for ``prop`` is in [low, high].

        A delegated range selection on the typed value partition — the
        kind of condition the mediator pushes into SQL instead of
        filtering client-side.
        """
        conditions = ["p_text=?", "v_num IS NOT NULL"]
        args = [prop.value]
        if low is not None:
            conditions.append("v_num >= ?")
            args.append(float(low))
        if high is not None:
            conditions.append("v_num <= ?")
            args.append(float(high))
        rows = self._connection.execute(
            "SELECT DISTINCT s_kind, s_text FROM triples WHERE "
            + " AND ".join(conditions),
            args,
        )
        return [self._decode_subject(kind, text) for kind, text in rows]

    def to_ntriples(self):
        return "\n".join(t.n3() for t in sorted(
            self.triples(), key=lambda t: t.n3()
        )) + ("\n" if len(self) else "")

    def to_turtle(self, prefixes=None):
        from repro.rdf.serializer import serialize_turtle
        return serialize_turtle(self, prefixes=prefixes)
