"""Abstract syntax tree for SciSPARQL queries, updates, and definitions.

Nodes are plain data holders: the parser builds them, the translator
(:mod:`repro.algebra.translator`) consumes them.  Equality is structural to
keep tests straightforward.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


class Node:
    """Base AST node with structural equality and a generic repr."""

    _fields: Tuple[str, ...] = ()

    def __eq__(self, other):
        return type(self) is type(other) and all(
            getattr(self, field) == getattr(other, field)
            for field in self._fields
        )

    def __hash__(self):
        return hash((type(self).__name__,) + tuple(
            _hashable(getattr(self, field)) for field in self._fields
        ))

    def __repr__(self):
        inner = ", ".join(
            "%s=%r" % (field, getattr(self, field)) for field in self._fields
        )
        return "%s(%s)" % (type(self).__name__, inner)


def _hashable(value):
    if isinstance(value, list):
        return tuple(_hashable(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _hashable(v)) for k, v in value.items()))
    return value


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------

class Var(Node):
    """A query variable ``?name``."""

    _fields = ("name",)

    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return "?%s" % self.name


class TermExpr(Node):
    """A constant RDF term (URI or Literal) used in an expression."""

    _fields = ("term",)

    def __init__(self, term):
        self.term = term


class BinaryOp(Node):
    """Infix operator: arithmetic, comparison, or logical."""

    _fields = ("op", "left", "right")

    def __init__(self, op, left, right):
        self.op = op
        self.left = left
        self.right = right


class UnaryOp(Node):
    """Prefix operator: ``!``, unary ``-`` or ``+``."""

    _fields = ("op", "operand")

    def __init__(self, op, operand):
        self.op = op
        self.operand = operand


class FunctionCall(Node):
    """A call to a built-in, user-defined, or foreign function.

    ``name`` is a URI (user-defined / foreign) or an upper-case string
    (built-in).  Aggregates are a separate node.
    """

    _fields = ("name", "args")

    def __init__(self, name, args):
        self.name = name
        self.args = list(args)


class Aggregate(Node):
    """An aggregate expression inside SELECT / HAVING / ORDER BY."""

    _fields = ("name", "expr", "distinct", "separator")

    def __init__(self, name, expr, distinct=False, separator=None):
        self.name = name          # COUNT, SUM, AVG, MIN, MAX, SAMPLE, GROUP_CONCAT
        self.expr = expr          # None for COUNT(*)
        self.distinct = distinct
        self.separator = separator


class ExistsExpr(Node):
    """``EXISTS {...}`` / ``NOT EXISTS {...}`` in a FILTER."""

    _fields = ("pattern", "negated")

    def __init__(self, pattern, negated=False):
        self.pattern = pattern
        self.negated = negated


class InExpr(Node):
    """``expr IN (e1, e2, ...)`` and its negation."""

    _fields = ("expr", "choices", "negated")

    def __init__(self, expr, choices, negated=False):
        self.expr = expr
        self.choices = list(choices)
        self.negated = negated


class Closure(Node):
    """A lexical closure: ``FN(?x ?y) body-expression``.

    Free variables of the body that are not parameters capture their
    bindings from the enclosing solution at evaluation time (dissertation
    section 4.3).
    """

    _fields = ("params", "body")

    def __init__(self, params, body):
        self.params = list(params)
        self.body = body


class FunctionRef(Node):
    """A function passed by name as a value to a second-order function."""

    _fields = ("name",)

    def __init__(self, name):
        self.name = name


# -- array subscripts (SciSPARQL section 4.1.1) ------------------------------

class RangeSubscript(Node):
    """``lo:hi`` or ``lo:stride:hi`` (1-based, inclusive); parts may be
    None for open bounds, stride defaults to 1."""

    _fields = ("lo", "stride", "hi")

    def __init__(self, lo=None, stride=None, hi=None):
        self.lo = lo
        self.stride = stride
        self.hi = hi


class ArraySubscript(Node):
    """``base[sub1, sub2, ...]`` — each sub is an expression (single
    index) or a RangeSubscript."""

    _fields = ("base", "subscripts")

    def __init__(self, base, subscripts):
        self.base = base
        self.subscripts = list(subscripts)


# ---------------------------------------------------------------------------
# property paths (section 3.4)
# ---------------------------------------------------------------------------

class PathLink(Node):
    """A single predicate URI used as a path atom."""

    _fields = ("uri",)

    def __init__(self, uri):
        self.uri = uri


class PathInverse(Node):
    _fields = ("path",)

    def __init__(self, path):
        self.path = path


class PathSequence(Node):
    _fields = ("parts",)

    def __init__(self, parts):
        self.parts = list(parts)


class PathAlternative(Node):
    _fields = ("parts",)

    def __init__(self, parts):
        self.parts = list(parts)


class PathMod(Node):
    """``path*``, ``path+``, or ``path?``."""

    _fields = ("path", "modifier")

    def __init__(self, path, modifier):
        self.path = path
        self.modifier = modifier


class PathNegated(Node):
    """``!(:p1 | ^:p2 | ...)`` — negated property set."""

    _fields = ("forward", "inverse")

    def __init__(self, forward, inverse):
        self.forward = list(forward)
        self.inverse = list(inverse)


# ---------------------------------------------------------------------------
# graph patterns
# ---------------------------------------------------------------------------

class TriplePattern(Node):
    """(subject, property-or-path, value); components may be Vars, terms,
    or array expressions in the value position."""

    _fields = ("subject", "predicate", "value")

    def __init__(self, subject, predicate, value):
        self.subject = subject
        self.predicate = predicate
        self.value = value


class GroupPattern(Node):
    """``{ ... }`` — an ordered list of patterns and clauses."""

    _fields = ("elements",)

    def __init__(self, elements):
        self.elements = list(elements)


class OptionalPattern(Node):
    _fields = ("pattern",)

    def __init__(self, pattern):
        self.pattern = pattern


class UnionPattern(Node):
    _fields = ("alternatives",)

    def __init__(self, alternatives):
        self.alternatives = list(alternatives)


class MinusPattern(Node):
    _fields = ("pattern",)

    def __init__(self, pattern):
        self.pattern = pattern


class GraphGraphPattern(Node):
    """``GRAPH name-or-var { ... }``."""

    _fields = ("graph", "pattern")

    def __init__(self, graph, pattern):
        self.graph = graph
        self.pattern = pattern


class FilterClause(Node):
    _fields = ("expr",)

    def __init__(self, expr):
        self.expr = expr


class BindClause(Node):
    """``BIND(expr AS ?var)``."""

    _fields = ("expr", "var")

    def __init__(self, expr, var):
        self.expr = expr
        self.var = var


class ValuesClause(Node):
    """Inline data: VALUES (?a ?b) { (1 2) (3 4) }; None = UNDEF."""

    _fields = ("variables", "rows")

    def __init__(self, variables, rows):
        self.variables = list(variables)
        self.rows = [list(row) for row in rows]


class SubSelect(Node):
    """A nested SELECT used as a graph pattern."""

    _fields = ("query",)

    def __init__(self, query):
        self.query = query


# ---------------------------------------------------------------------------
# solution modifiers & query forms
# ---------------------------------------------------------------------------

class Modifiers(Node):
    _fields = ("group_by", "having", "order_by", "limit", "offset")

    def __init__(self, group_by=None, having=None, order_by=None,
                 limit=None, offset=None):
        self.group_by = group_by or []      # list of (expr, alias-or-None)
        self.having = having or []          # list of exprs
        self.order_by = order_by or []      # list of (expr, ascending: bool)
        self.limit = limit
        self.offset = offset


class SelectQuery(Node):
    _fields = ("projection", "where", "modifiers", "distinct", "reduced",
               "from_graphs", "from_named")

    def __init__(self, projection, where, modifiers=None, distinct=False,
                 reduced=False, from_graphs=None, from_named=None):
        #: '*' or list of (expression, alias-Var-or-None)
        self.projection = projection
        self.where = where
        self.modifiers = modifiers or Modifiers()
        self.distinct = distinct
        self.reduced = reduced
        self.from_graphs = from_graphs or []
        self.from_named = from_named or []


class AskQuery(Node):
    _fields = ("where", "from_graphs", "from_named")

    def __init__(self, where, from_graphs=None, from_named=None):
        self.where = where
        self.from_graphs = from_graphs or []
        self.from_named = from_named or []


class ConstructQuery(Node):
    _fields = ("template", "where", "modifiers", "from_graphs", "from_named")

    def __init__(self, template, where, modifiers=None,
                 from_graphs=None, from_named=None):
        self.template = list(template)
        self.where = where
        self.modifiers = modifiers or Modifiers()
        self.from_graphs = from_graphs or []
        self.from_named = from_named or []


class DescribeQuery(Node):
    _fields = ("terms", "where")

    def __init__(self, terms, where=None):
        self.terms = list(terms)
        self.where = where


class FunctionDefinition(Node):
    """``DEFINE FUNCTION name(?p1 ?p2) AS body``.

    The body is either an expression or a SelectQuery (a parameterized
    view, dissertation section 4.2).
    """

    _fields = ("name", "params", "body")

    def __init__(self, name, params, body):
        self.name = name
        self.params = list(params)
        self.body = body


# -- updates ------------------------------------------------------------------

class InsertData(Node):
    _fields = ("triples", "graph")

    def __init__(self, triples, graph=None):
        self.triples = list(triples)
        self.graph = graph


class DeleteData(Node):
    _fields = ("triples", "graph")

    def __init__(self, triples, graph=None):
        self.triples = list(triples)
        self.graph = graph


class Modify(Node):
    """``DELETE {...} INSERT {...} WHERE {...}`` (either template may be
    absent; ``DELETE WHERE {...}`` reuses the pattern as the template)."""

    _fields = ("delete_template", "insert_template", "where", "graph")

    def __init__(self, delete_template, insert_template, where, graph=None):
        self.delete_template = list(delete_template or [])
        self.insert_template = list(insert_template or [])
        self.where = where
        self.graph = graph


class ClearGraph(Node):
    _fields = ("graph",)

    def __init__(self, graph):
        self.graph = graph
