"""Tokenizer for SciSPARQL.

Hand-written scanner producing a flat token list for the recursive-descent
parser.  Keywords are recognised case-insensitively at parse time (the
lexer emits them as NAME tokens); punctuation covers both SPARQL operators
and the SciSPARQL array-subscript syntax.
"""

from __future__ import annotations

import re
from typing import List, NamedTuple, Optional

from repro.exceptions import ParseError


class Token(NamedTuple):
    kind: str
    value: object
    line: int
    column: int

    def __repr__(self):
        return "Token(%s, %r)" % (self.kind, self.value)


#: Token kinds emitted by the lexer.
IRI = "IRI"                  # <http://...>
PNAME = "PNAME"              # prefix:local or prefix: (value: (prefix, local))
BLANK = "BLANK"              # _:label
VAR = "VAR"                  # ?name or $name (value: name)
NAME = "NAME"                # bare name / keyword candidate
STRING = "STRING"            # quoted string (value: unescaped text)
LANGTAG = "LANGTAG"          # @en
INTEGER = "INTEGER"
DECIMAL = "DECIMAL"
DOUBLE = "DOUBLE"
PUNCT = "PUNCT"              # operators & delimiters
EOF = "EOF"

_IRI_RE = re.compile(r'<([^<>"{}|^`\\\x00-\x20]*)>')
_VAR_RE = re.compile(r"[?$]([A-Za-z_][A-Za-z_0-9]*)")
_BLANK_RE = re.compile(r"_:([A-Za-z_][A-Za-z_0-9.\-]*)")
_PNAME_RE = re.compile(
    r"([A-Za-z_][A-Za-z_0-9\-]*)?:((?:[A-Za-z_0-9\-.]|%[0-9A-Fa-f]{2})*)"
)
_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z_0-9\-]*")
_NUMBER_RE = re.compile(
    r"(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?"
)
_LANGTAG_RE = re.compile(r"@[A-Za-z]+(?:-[A-Za-z0-9]+)*")

#: Multi-character punctuation, longest first.
_MULTI_PUNCT = ["^^", "&&", "||", "!=", "<=", ">=", "=>"]
_SINGLE_PUNCT = set("{}()[].,;*+-/|^?!=<>:@")


class Lexer:
    """Streaming tokenizer over a query string."""

    def __init__(self, text):
        self.text = text
        self.position = 0
        self.line = 1
        self.column = 1

    def error(self, message):
        raise ParseError(message, self.line, self.column)

    def _advance(self, count):
        for _ in range(count):
            if self.position < len(self.text):
                if self.text[self.position] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.position += 1

    def _skip_trivia(self):
        text = self.text
        while self.position < len(text):
            char = text[self.position]
            if char in " \t\r\n":
                self._advance(1)
            elif char == "#":
                while (self.position < len(text)
                       and text[self.position] != "\n"):
                    self._advance(1)
            else:
                return

    def tokens(self) -> List[Token]:
        out = []
        while True:
            token = self.next_token()
            out.append(token)
            if token.kind == EOF:
                return out

    def next_token(self) -> Token:
        self._skip_trivia()
        text = self.text
        if self.position >= len(text):
            return Token(EOF, None, self.line, self.column)
        line, column = self.line, self.column
        char = text[self.position]

        # IRI reference
        if char == "<":
            match = _IRI_RE.match(text, self.position)
            if match:
                self._advance(match.end() - self.position)
                return Token(IRI, match.group(1), line, column)
            # otherwise '<' is an operator

        # variables
        if char in "?$":
            match = _VAR_RE.match(text, self.position)
            if match:
                self._advance(match.end() - self.position)
                return Token(VAR, match.group(1), line, column)
            # bare '?' is the zero-or-one path operator

        # blank node labels
        if char == "_" and text.startswith("_:", self.position):
            match = _BLANK_RE.match(text, self.position)
            if not match:
                self.error("malformed blank node label")
            self._advance(match.end() - self.position)
            return Token(BLANK, match.group(1), line, column)

        # strings (single or double quoted, with long forms)
        if char in "\"'":
            return self._string(line, column)

        # numbers
        if char.isdigit() or (
            char == "." and self.position + 1 < len(text)
            and text[self.position + 1].isdigit()
        ):
            match = _NUMBER_RE.match(text, self.position)
            lexeme = match.group(0)
            self._advance(len(lexeme))
            if "e" in lexeme.lower():
                return Token(DOUBLE, float(lexeme), line, column)
            if "." in lexeme:
                return Token(DECIMAL, float(lexeme), line, column)
            return Token(INTEGER, int(lexeme), line, column)

        # language tags
        if char == "@":
            match = _LANGTAG_RE.match(text, self.position)
            if match:
                self._advance(match.end() - self.position)
                return Token(LANGTAG, match.group(0)[1:], line, column)

        # prefixed names and bare names (keywords, 'a', 'true', ...)
        if char.isalpha() or char == "_" or char == ":":
            pname = _PNAME_RE.match(text, self.position)
            if pname and ":" in text[self.position:pname.end()]:
                prefix = pname.group(1) or ""
                local = pname.group(2)
                # PN_LOCAL must not end in '.' (it would swallow the
                # triple terminator); give trailing dots back
                stripped = local.rstrip(".")
                trimmed = len(local) - len(stripped)
                local = stripped
                # an empty-prefix pname whose local part starts with a
                # digit/sign is indistinguishable from the ':' range
                # operator followed by a number (?a[1:3], ?a[?i:-2]);
                # resolve in favour of the range syntax
                if prefix == "" and (
                    not local or local[0].isdigit() or local[0] in "-."
                ):
                    pass
                else:
                    self._advance(pname.end() - trimmed - self.position)
                    return Token(PNAME, (prefix, local), line, column)
            name = _NAME_RE.match(text, self.position)
            if name:
                self._advance(name.end() - self.position)
                return Token(NAME, name.group(0), line, column)

        # punctuation
        for punct in _MULTI_PUNCT:
            if text.startswith(punct, self.position):
                self._advance(len(punct))
                return Token(PUNCT, punct, line, column)
        if char in _SINGLE_PUNCT:
            self._advance(1)
            return Token(PUNCT, char, line, column)

        self.error("unexpected character %r" % char)

    def _string(self, line, column):
        text = self.text
        quote = text[self.position]
        long_quote = quote * 3
        if text.startswith(long_quote, self.position):
            end = text.find(long_quote, self.position + 3)
            if end < 0:
                self.error("unterminated long string")
            raw = text[self.position + 3:end]
            self._advance(end + 3 - self.position)
            return Token(STRING, _unescape(raw, self), line, column)
        position = self.position + 1
        pieces = []
        while position < len(text):
            char = text[position]
            if char == "\\":
                if position + 1 >= len(text):
                    self.error("unterminated escape")
                pieces.append(text[position:position + 2])
                position += 2
                continue
            if char == quote:
                raw = "".join(pieces)
                self._advance(position + 1 - self.position)
                return Token(STRING, _unescape(raw, self), line, column)
            if char == "\n":
                self.error("newline in string literal")
            pieces.append(char)
            position += 1
        self.error("unterminated string literal")


_ESCAPES = {
    "t": "\t", "n": "\n", "r": "\r", "b": "\b", "f": "\f",
    '"': '"', "'": "'", "\\": "\\",
}


def _unescape(raw, lexer=None):
    if "\\" not in raw:
        return raw
    out = []
    index = 0
    while index < len(raw):
        char = raw[index]
        if char != "\\":
            out.append(char)
            index += 1
            continue
        escape = raw[index + 1] if index + 1 < len(raw) else ""
        if escape in _ESCAPES:
            out.append(_ESCAPES[escape])
            index += 2
        elif escape == "u" and index + 5 < len(raw) + 1:
            out.append(chr(int(raw[index + 2:index + 6], 16)))
            index += 6
        elif escape == "U" and index + 9 < len(raw) + 1:
            out.append(chr(int(raw[index + 2:index + 10], 16)))
            index += 10
        else:
            if lexer is not None:
                lexer.error("invalid string escape \\%s" % escape)
            raise ParseError("invalid string escape \\%s" % escape)
    return "".join(out)
