"""The SciSPARQL language front-end: lexer, AST, and parser.

SciSPARQL (dissertation chapter 4) is a strict superset of W3C SPARQL 1.1.
On top of the standard query forms it adds:

- array dereference on variables and expressions: ``?a[2,1]``, with
  Matlab-style ranges ``lo:hi`` / ``lo:stride:hi`` and projection by
  omitted trailing subscripts (1-based, inclusive);
- user-defined functions as parameterized queries:
  ``DEFINE FUNCTION ex:f(?x) AS SELECT ?y WHERE {...}`` or
  ``DEFINE FUNCTION ex:f(?x) AS expression``;
- lexical closures ``FN(?x) expression`` usable as arguments to
  second-order functions such as ``array_map``;
- SPARQL Update subset: INSERT/DELETE DATA, DELETE/INSERT ... WHERE,
  CLEAR GRAPH.
"""

from repro.sparql.lexer import Lexer, Token
from repro.sparql.parser import Parser, parse_query
from repro.sparql import ast


def serialize_query(query):
    """Render a statement AST back to SciSPARQL text (lazy import to
    avoid a cycle with the parser)."""
    from repro.sparql.serializer import serialize_query as _impl
    return _impl(query)


__all__ = [
    "Lexer", "Token", "Parser", "parse_query", "serialize_query", "ast",
]
