"""Recursive-descent parser for SciSPARQL.

Covers the SPARQL 1.1 query forms used throughout the dissertation
(chapter 3) plus the SciSPARQL extensions (chapter 4): array subscripts
with ranges, expressions in SELECT lists, DEFINE FUNCTION, lexical
closures, and the update language subset.

The parser produces :mod:`repro.sparql.ast` nodes; RDF constants inside
queries are real :mod:`repro.rdf` terms.  Numeric RDF collections written
as constants — ``:s :p ((1 2) (3 4))`` — are consolidated into
:class:`~repro.arrays.NumericArray` values directly at parse time,
mirroring the loader-side consolidation of section 5.3.2.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.arrays.nma import NumericArray
from repro.exceptions import ParseError
from repro.rdf.namespace import RDF, WELL_KNOWN_PREFIXES
from repro.rdf.term import BlankNode, Literal, URI
from repro.sparql import ast
from repro.sparql.lexer import (
    BLANK, DECIMAL, DOUBLE, EOF, INTEGER, IRI, LANGTAG, NAME, PNAME, PUNCT,
    STRING, VAR, Lexer, Token,
)

#: Built-in scalar functions (SPARQL 1.1 + SciSPARQL array built-ins).
BUILTIN_FUNCTIONS = {
    "BOUND", "IF", "COALESCE", "STR", "LANG", "LANGMATCHES", "DATATYPE",
    "IRI", "URI", "BNODE", "RAND", "ABS", "CEIL", "FLOOR", "ROUND",
    "CONCAT", "STRLEN", "UCASE", "LCASE", "SUBSTR", "STRSTARTS",
    "STRENDS", "CONTAINS", "STRBEFORE", "STRAFTER", "ENCODE_FOR_URI",
    "REPLACE", "REGEX", "ISIRI", "ISURI", "ISBLANK", "ISLITERAL",
    "ISNUMERIC", "SAMETERM", "NOW", "YEAR", "MONTH", "DAY", "HOURS",
    "MINUTES", "SECONDS", "STRDT", "STRLANG", "UUID", "STRUUID",
    # SciSPARQL array built-ins (section 4.1.3)
    "ADIMS", "AELT", "ARRAY", "ARRAY_SUM", "ARRAY_AVG", "ARRAY_MIN",
    "ARRAY_MAX", "ARRAY_COUNT", "ARRAY_MAP", "ARRAY_CONDENSE",
    "ARRAY_BUILD", "TRANSPOSE", "ISARRAY",
    # numeric helpers
    "SQRT", "EXP", "LN", "LOG10", "POWER", "MOD", "SIN", "COS", "TAN",
}

AGGREGATES = {"COUNT", "SUM", "AVG", "MIN", "MAX", "SAMPLE", "GROUP_CONCAT"}

_KEYWORDS = {
    "SELECT", "CONSTRUCT", "ASK", "DESCRIBE", "WHERE", "FROM", "NAMED",
    "PREFIX", "BASE", "DISTINCT", "REDUCED", "OPTIONAL", "UNION", "MINUS",
    "GRAPH", "FILTER", "BIND", "VALUES", "UNDEF", "GROUP", "BY", "HAVING",
    "ORDER", "ASC", "DESC", "LIMIT", "OFFSET", "AS", "IN", "NOT", "EXISTS",
    "DEFINE", "FUNCTION", "FN", "INSERT", "DELETE", "DATA", "WITH",
    "CLEAR", "ALL", "DEFAULT", "A", "TRUE", "FALSE", "SEPARATOR",
}


def parse_query(text, prefixes=None):
    """Parse one SciSPARQL statement and return its AST."""
    return Parser(text, prefixes=prefixes).parse()


class Parser:
    def __init__(self, text, prefixes=None):
        self.tokens = Lexer(text).tokens()
        self.position = 0
        self.prefixes = dict(WELL_KNOWN_PREFIXES)
        if prefixes:
            self.prefixes.update(prefixes)
        self.base = None
        self._bnode_labels = {}

    # -- token helpers ---------------------------------------------------------

    def peek(self, ahead=0):
        index = min(self.position + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self):
        token = self.tokens[self.position]
        if token.kind != EOF:
            self.position += 1
        return token

    def error(self, message, token=None):
        token = token or self.peek()
        raise ParseError(message, token.line, token.column)

    def at_punct(self, value):
        token = self.peek()
        return token.kind == PUNCT and token.value == value

    def accept_punct(self, value):
        if self.at_punct(value):
            self.next()
            return True
        return False

    def expect_punct(self, value):
        if not self.accept_punct(value):
            self.error("expected %r, found %r" % (value, self.peek().value))

    def at_keyword(self, *names):
        token = self.peek()
        return token.kind == NAME and token.value.upper() in names

    def accept_keyword(self, *names):
        if self.at_keyword(*names):
            return self.next().value.upper()
        return None

    def expect_keyword(self, *names):
        keyword = self.accept_keyword(*names)
        if keyword is None:
            self.error(
                "expected %s, found %r"
                % ("/".join(names), self.peek().value)
            )
        return keyword

    # -- entry points ------------------------------------------------------------

    def parse(self):
        self._prologue()
        token = self.peek()
        if token.kind != NAME:
            self.error("expected a query form, found %r" % (token.value,))
        keyword = token.value.upper()
        if keyword == "SELECT":
            query = self._select_query()
        elif keyword == "ASK":
            query = self._ask_query()
        elif keyword == "CONSTRUCT":
            query = self._construct_query()
        elif keyword == "DESCRIBE":
            query = self._describe_query()
        elif keyword == "DEFINE":
            query = self._function_definition()
        elif keyword in ("INSERT", "DELETE", "WITH", "CLEAR"):
            query = self._update()
        else:
            self.error("unsupported query form %r" % token.value)
        if self.peek().kind != EOF:
            self.error("unexpected input after query: %r"
                       % (self.peek().value,))
        return query

    def _prologue(self):
        while True:
            if self.at_keyword("PREFIX"):
                self.next()
                token = self.next()
                if token.kind == PUNCT and token.value == ":":
                    token = Token(PNAME, ("", ""), token.line, token.column)
                if token.kind != PNAME or token.value[1] != "":
                    self.error("expected prefix name ending in ':'", token)
                iri = self.next()
                if iri.kind != IRI:
                    self.error("expected IRI after PREFIX", iri)
                self.prefixes[token.value[0]] = self._resolve_iri(iri.value)
            elif self.at_keyword("BASE"):
                self.next()
                iri = self.next()
                if iri.kind != IRI:
                    self.error("expected IRI after BASE", iri)
                self.base = iri.value
            else:
                return

    # -- query forms ---------------------------------------------------------------

    def _select_query(self):
        self.expect_keyword("SELECT")
        distinct = bool(self.accept_keyword("DISTINCT"))
        reduced = bool(self.accept_keyword("REDUCED"))
        projection = self._projection()
        from_graphs, from_named = self._dataset_clauses()
        where = self._where_clause()
        modifiers = self._solution_modifiers()
        return ast.SelectQuery(
            projection, where, modifiers, distinct=distinct,
            reduced=reduced, from_graphs=from_graphs, from_named=from_named,
        )

    def _projection(self):
        if self.accept_punct("*"):
            return "*"
        items = []
        while True:
            token = self.peek()
            if token.kind == VAR:
                # could be a bare var or a var with an array subscript
                expr = self._postfix_from_var()
                if isinstance(expr, ast.Var):
                    items.append((expr, None))
                else:
                    items.append((expr, None))
            elif self.at_punct("("):
                self.next()
                expr = self._expression()
                self.expect_keyword("AS")
                var_token = self.next()
                if var_token.kind != VAR:
                    self.error("expected variable after AS", var_token)
                self.expect_punct(")")
                items.append((expr, ast.Var(var_token.value)))
            else:
                break
        if not items:
            self.error("empty SELECT clause")
        return items

    def _postfix_from_var(self):
        var_token = self.next()
        expr = ast.Var(var_token.value)
        while self.at_punct("["):
            expr = self._array_subscript(expr)
        return expr

    def _dataset_clauses(self):
        from_graphs, from_named = [], []
        while self.at_keyword("FROM"):
            self.next()
            named = bool(self.accept_keyword("NAMED"))
            iri = self._expect_iri()
            (from_named if named else from_graphs).append(iri)
        return from_graphs, from_named

    def _where_clause(self):
        self.accept_keyword("WHERE")
        return self._group_graph_pattern()

    def _ask_query(self):
        self.expect_keyword("ASK")
        from_graphs, from_named = self._dataset_clauses()
        where = self._where_clause()
        return ast.AskQuery(where, from_graphs, from_named)

    def _construct_query(self):
        self.expect_keyword("CONSTRUCT")
        template = self._triples_template()
        from_graphs, from_named = self._dataset_clauses()
        where = self._where_clause()
        modifiers = self._solution_modifiers()
        return ast.ConstructQuery(
            template, where, modifiers, from_graphs, from_named
        )

    def _describe_query(self):
        self.expect_keyword("DESCRIBE")
        terms = []
        while True:
            token = self.peek()
            if token.kind == VAR:
                self.next()
                terms.append(ast.Var(token.value))
            elif token.kind in (IRI, PNAME):
                terms.append(self._term_from_token(self.next()))
            else:
                break
        where = None
        if self.at_keyword("WHERE") or self.at_punct("{"):
            where = self._where_clause()
        if not terms:
            self.error("DESCRIBE requires at least one term or variable")
        return ast.DescribeQuery(terms, where)

    def _function_definition(self):
        self.expect_keyword("DEFINE")
        self.expect_keyword("FUNCTION")
        name_token = self.next()
        if name_token.kind not in (IRI, PNAME):
            self.error("expected function name", name_token)
        name = self._term_from_token(name_token)
        self.expect_punct("(")
        params = []
        while not self.at_punct(")"):
            self.accept_punct(",")
            var_token = self.next()
            if var_token.kind != VAR:
                self.error("expected parameter variable", var_token)
            params.append(ast.Var(var_token.value))
        self.expect_punct(")")
        self.expect_keyword("AS")
        if self.at_keyword("SELECT"):
            body = self._select_query()
        else:
            body = self._expression()
        return ast.FunctionDefinition(name, params, body)

    # -- updates -----------------------------------------------------------------

    def _update(self):
        graph = None
        if self.accept_keyword("WITH"):
            graph = self._expect_iri()
        if self.accept_keyword("CLEAR"):
            if self.accept_keyword("GRAPH"):
                return ast.ClearGraph(self._expect_iri())
            if self.accept_keyword("DEFAULT"):
                return ast.ClearGraph(None)
            self.expect_keyword("ALL")
            return ast.ClearGraph("ALL")
        if self.accept_keyword("INSERT"):
            if self.accept_keyword("DATA"):
                triples, data_graph = self._quad_data()
                return ast.InsertData(triples, data_graph or graph)
            insert_template = self._triples_template()
            self.expect_keyword("WHERE")
            where = self._group_graph_pattern()
            return ast.Modify([], insert_template, where, graph)
        self.expect_keyword("DELETE")
        if self.accept_keyword("DATA"):
            triples, data_graph = self._quad_data()
            return ast.DeleteData(triples, data_graph or graph)
        if self.at_keyword("WHERE"):
            self.next()
            where = self._group_graph_pattern()
            template = [
                element for element in where.elements
                if isinstance(element, ast.TriplePattern)
            ]
            return ast.Modify(template, [], where, graph)
        delete_template = self._triples_template()
        insert_template = []
        if self.accept_keyword("INSERT"):
            insert_template = self._triples_template()
        self.expect_keyword("WHERE")
        where = self._group_graph_pattern()
        return ast.Modify(delete_template, insert_template, where, graph)

    def _quad_data(self):
        self.expect_punct("{")
        graph = None
        if self.accept_keyword("GRAPH"):
            graph = self._expect_iri()
            triples = self._triples_template()
            self.expect_punct("}")
            return triples, graph
        triples = []
        while not self.at_punct("}"):
            triples.extend(self._triples_same_subject())
            if not self.accept_punct("."):
                break
        self.expect_punct("}")
        return triples, graph

    def _triples_template(self):
        self.expect_punct("{")
        triples = []
        while not self.at_punct("}"):
            triples.extend(self._triples_same_subject())
            if not self.accept_punct("."):
                break
        self.expect_punct("}")
        return triples

    # -- graph patterns ---------------------------------------------------------------

    def _group_graph_pattern(self):
        self.expect_punct("{")
        if self.at_keyword("SELECT"):
            query = self._select_query()
            self.expect_punct("}")
            return ast.GroupPattern([ast.SubSelect(query)])
        elements = []
        while not self.at_punct("}"):
            if self.at_keyword("OPTIONAL"):
                self.next()
                elements.append(
                    ast.OptionalPattern(self._group_graph_pattern())
                )
            elif self.at_keyword("MINUS"):
                self.next()
                elements.append(ast.MinusPattern(self._group_graph_pattern()))
            elif self.at_keyword("GRAPH"):
                self.next()
                token = self.peek()
                if token.kind == VAR:
                    self.next()
                    graph = ast.Var(token.value)
                else:
                    graph = self._expect_iri()
                elements.append(
                    ast.GraphGraphPattern(graph, self._group_graph_pattern())
                )
            elif self.at_keyword("FILTER"):
                self.next()
                elements.append(ast.FilterClause(self._constraint()))
            elif self.at_keyword("BIND"):
                self.next()
                self.expect_punct("(")
                expr = self._expression()
                self.expect_keyword("AS")
                var_token = self.next()
                if var_token.kind != VAR:
                    self.error("expected variable after AS", var_token)
                self.expect_punct(")")
                elements.append(ast.BindClause(expr, ast.Var(var_token.value)))
            elif self.at_keyword("VALUES"):
                self.next()
                elements.append(self._values_clause())
            elif self.at_punct("{"):
                first = self._group_graph_pattern()
                if self.at_keyword("UNION"):
                    alternatives = [first]
                    while self.accept_keyword("UNION"):
                        alternatives.append(self._group_graph_pattern())
                    elements.append(ast.UnionPattern(alternatives))
                else:
                    elements.append(first)
            else:
                elements.extend(self._triples_same_subject())
            self.accept_punct(".")
        self.expect_punct("}")
        return ast.GroupPattern(elements)

    def _constraint(self):
        if self.at_punct("("):
            self.next()
            expr = self._expression()
            self.expect_punct(")")
            return expr
        return self._primary_expression()

    def _values_clause(self):
        variables = []
        if self.accept_punct("("):
            while not self.at_punct(")"):
                token = self.next()
                if token.kind != VAR:
                    self.error("expected variable in VALUES", token)
                variables.append(ast.Var(token.value))
            self.expect_punct(")")
            self.expect_punct("{")
            rows = []
            while self.accept_punct("("):
                row = []
                while not self.at_punct(")"):
                    row.append(self._values_term())
                self.expect_punct(")")
                if len(row) != len(variables):
                    self.error("VALUES row arity mismatch")
                rows.append(row)
            self.expect_punct("}")
            return ast.ValuesClause(variables, rows)
        token = self.next()
        if token.kind != VAR:
            self.error("expected variable after VALUES", token)
        variables = [ast.Var(token.value)]
        self.expect_punct("{")
        rows = []
        while not self.at_punct("}"):
            rows.append([self._values_term()])
        self.expect_punct("}")
        return ast.ValuesClause(variables, rows)

    def _values_term(self):
        if self.accept_keyword("UNDEF"):
            return None
        return self._graph_term()

    # -- triples blocks -----------------------------------------------------------------

    def _triples_same_subject(self):
        """Parse one subject with its property list; returns TriplePatterns
        (plus auxiliary patterns for blank-node shorthand)."""
        out = []
        token = self.peek()
        if self.at_punct("[") :
            subject = ast.Var(_fresh_anon())
            out.extend(self._blank_node_properties(subject))
            if self._at_verb():
                out.extend(self._property_list(subject))
            return out
        subject = self._var_or_term(out)
        out.extend(self._property_list(subject))
        return out

    def _at_verb(self):
        token = self.peek()
        if token.kind in (IRI, PNAME, VAR):
            return True
        if token.kind == NAME and token.value == "a":
            return True
        if token.kind == PUNCT and token.value in ("^", "(", "!"):
            return True
        return False

    def _property_list(self, subject):
        out = []
        while True:
            predicate = self._verb()
            while True:
                value = self._object(out)
                out.append(ast.TriplePattern(subject, predicate, value))
                if not self.accept_punct(","):
                    break
            if not self.accept_punct(";"):
                return out
            if not self._at_verb():
                return out

    def _verb(self):
        token = self.peek()
        if token.kind == VAR:
            self.next()
            return ast.Var(token.value)
        return self._path()

    def _object(self, aux_patterns):
        if self.at_punct("["):
            node = ast.Var(_fresh_anon())
            aux_patterns.extend(self._blank_node_properties(node))
            return node
        return self._var_or_term(aux_patterns)

    def _blank_node_properties(self, node):
        self.expect_punct("[")
        if self.accept_punct("]"):
            return []
        out = self._property_list(node)
        self.expect_punct("]")
        return out

    def _var_or_term(self, aux_patterns):
        token = self.peek()
        if token.kind == VAR:
            self.next()
            return ast.Var(token.value)
        if self.at_punct("("):
            return self._collection(aux_patterns)
        return self._graph_term()

    def _collection(self, aux_patterns):
        """An RDF collection constant.

        Pure-numeric (possibly nested) collections consolidate into a
        NumericArray constant; anything else desugars into the standard
        rdf:first / rdf:rest chain.
        """
        start = self.position
        numeric = self._try_numeric_collection()
        if numeric is not None:
            return numeric
        self.position = start
        self.expect_punct("(")
        items = []
        while not self.at_punct(")"):
            items.append(self._object(aux_patterns))
        self.expect_punct(")")
        if not items:
            return RDF.nil
        head = ast.Var(_fresh_anon())
        node = head
        for index, item in enumerate(items):
            aux_patterns.append(ast.TriplePattern(node, RDF.first, item))
            if index == len(items) - 1:
                aux_patterns.append(
                    ast.TriplePattern(node, RDF.rest, RDF.nil)
                )
            else:
                next_node = ast.Var(_fresh_anon())
                aux_patterns.append(
                    ast.TriplePattern(node, RDF.rest, next_node)
                )
                node = next_node
        return head

    def _try_numeric_collection(self):
        """Attempt to parse ``( ... )`` as nested numbers; None on failure."""
        if not self.accept_punct("("):
            return None
        values = []
        while not self.at_punct(")"):
            token = self.peek()
            if token.kind in (INTEGER, DECIMAL, DOUBLE):
                self.next()
                values.append(token.value)
            elif token.kind == PUNCT and token.value == "-":
                self.next()
                inner = self.peek()
                if inner.kind not in (INTEGER, DECIMAL, DOUBLE):
                    return None
                self.next()
                values.append(-inner.value)
            elif token.kind == PUNCT and token.value == "(":
                nested = self._try_numeric_collection()
                if nested is None:
                    return None
                values.append(nested.to_nested_lists())
            else:
                return None
        self.expect_punct(")")
        if not values:
            return None
        try:
            return NumericArray(values)
        except Exception:
            return None

    def _graph_term(self):
        token = self.next()
        if token.kind == IRI:
            return URI(self._resolve_iri(token.value))
        if token.kind == PNAME:
            return self._pname_to_uri(token)
        if token.kind == BLANK:
            return self._bnode_labels.setdefault(
                token.value, ast.Var(_fresh_anon())
            )
        if token.kind == STRING:
            return self._literal_tail(token.value)
        if token.kind in (INTEGER,):
            return Literal(token.value)
        if token.kind in (DECIMAL, DOUBLE):
            return Literal(float(token.value))
        if token.kind == PUNCT and token.value in ("-", "+"):
            number = self.next()
            if number.kind not in (INTEGER, DECIMAL, DOUBLE):
                self.error("expected number after sign", number)
            value = number.value if token.value == "+" else -number.value
            return Literal(value)
        if token.kind == NAME:
            upper = token.value.upper()
            if token.value == "a":
                return RDF.type
            if upper == "TRUE":
                return Literal(True)
            if upper == "FALSE":
                return Literal(False)
        self.error("expected an RDF term, found %r" % (token.value,), token)

    def _literal_tail(self, text):
        token = self.peek()
        if token.kind == LANGTAG:
            self.next()
            return Literal(text, lang=token.value)
        if token.kind == PUNCT and token.value == "^^":
            self.next()
            datatype_token = self.next()
            if datatype_token.kind == IRI:
                datatype = URI(self._resolve_iri(datatype_token.value))
            elif datatype_token.kind == PNAME:
                datatype = self._pname_to_uri(datatype_token)
            else:
                self.error("expected datatype IRI", datatype_token)
            return Literal.from_lexical(text, datatype)
        return Literal(text)

    def _term_from_token(self, token):
        if token.kind == IRI:
            return URI(self._resolve_iri(token.value))
        if token.kind == PNAME:
            return self._pname_to_uri(token)
        self.error("expected IRI or prefixed name", token)

    def _pname_to_uri(self, token):
        prefix, local = token.value
        try:
            base = self.prefixes[prefix]
        except KeyError:
            self.error("undefined prefix %r" % prefix, token)
        return URI(base + local)

    def _expect_iri(self):
        token = self.next()
        return self._term_from_token(token)

    def _resolve_iri(self, iri):
        if self.base and "://" not in iri and not iri.startswith("urn:"):
            return self.base + iri
        return iri

    # -- property paths -------------------------------------------------------------

    def _path(self):
        path = self._path_alternative()
        if isinstance(path, ast.PathLink):
            return path.uri
        return path

    def _path_alternative(self):
        parts = [self._path_sequence()]
        while self.accept_punct("|"):
            parts.append(self._path_sequence())
        if len(parts) == 1:
            return parts[0]
        return ast.PathAlternative(parts)

    def _path_sequence(self):
        parts = [self._path_elt_or_inverse()]
        while self.accept_punct("/"):
            parts.append(self._path_elt_or_inverse())
        if len(parts) == 1:
            return parts[0]
        return ast.PathSequence(parts)

    def _path_elt_or_inverse(self):
        if self.accept_punct("^"):
            return ast.PathInverse(self._path_elt())
        return self._path_elt()

    def _path_elt(self):
        primary = self._path_primary()
        token = self.peek()
        if token.kind == PUNCT and token.value in ("*", "+", "?"):
            self.next()
            return ast.PathMod(primary, token.value)
        return primary

    def _path_primary(self):
        token = self.peek()
        if token.kind == PUNCT and token.value == "(":
            self.next()
            inner = self._path_alternative()
            self.expect_punct(")")
            return inner
        if token.kind == PUNCT and token.value == "!":
            self.next()
            return self._negated_property_set()
        if token.kind == NAME and token.value == "a":
            self.next()
            return ast.PathLink(RDF.type)
        if token.kind in (IRI, PNAME):
            return ast.PathLink(self._term_from_token(self.next()))
        self.error("expected property path element", token)

    def _negated_property_set(self):
        forward, inverse = [], []

        def one(self):
            if self.accept_punct("^"):
                target = inverse
            else:
                target = forward
            token = self.peek()
            if token.kind == NAME and token.value == "a":
                self.next()
                target.append(RDF.type)
            else:
                target.append(self._term_from_token(self.next()))

        if self.accept_punct("("):
            one(self)
            while self.accept_punct("|"):
                one(self)
            self.expect_punct(")")
        else:
            one(self)
        return ast.PathNegated(forward, inverse)

    # -- solution modifiers -------------------------------------------------------------

    def _solution_modifiers(self):
        group_by = []
        having = []
        order_by = []
        limit = None
        offset = None
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            while True:
                token = self.peek()
                if token.kind == VAR:
                    group_by.append((self._postfix_from_var(), None))
                elif self.at_punct("("):
                    self.next()
                    expr = self._expression()
                    alias = None
                    if self.accept_keyword("AS"):
                        var_token = self.next()
                        if var_token.kind != VAR:
                            self.error("expected variable", var_token)
                        alias = ast.Var(var_token.value)
                    self.expect_punct(")")
                    group_by.append((expr, alias))
                else:
                    break
            if not group_by:
                self.error("empty GROUP BY")
        if self.accept_keyword("HAVING"):
            while self.at_punct("("):
                self.next()
                having.append(self._expression())
                self.expect_punct(")")
            if not having:
                self.error("empty HAVING")
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            while True:
                if self.accept_keyword("ASC"):
                    self.expect_punct("(")
                    order_by.append((self._expression(), True))
                    self.expect_punct(")")
                elif self.accept_keyword("DESC"):
                    self.expect_punct("(")
                    order_by.append((self._expression(), False))
                    self.expect_punct(")")
                elif self.peek().kind == VAR:
                    order_by.append((self._postfix_from_var(), True))
                elif self.at_punct("("):
                    self.next()
                    order_by.append((self._expression(), True))
                    self.expect_punct(")")
                else:
                    break
            if not order_by:
                self.error("empty ORDER BY")
        while self.at_keyword("LIMIT", "OFFSET"):
            keyword = self.next().value.upper()
            token = self.next()
            if token.kind != INTEGER:
                self.error("expected integer after %s" % keyword, token)
            if keyword == "LIMIT":
                limit = token.value
            else:
                offset = token.value
        return ast.Modifiers(group_by, having, order_by, limit, offset)

    # -- expressions -----------------------------------------------------------------

    def _expression(self):
        return self._or_expression()

    def _or_expression(self):
        left = self._and_expression()
        while self.at_punct("||"):
            self.next()
            left = ast.BinaryOp("||", left, self._and_expression())
        return left

    def _and_expression(self):
        left = self._relational_expression()
        while self.at_punct("&&"):
            self.next()
            left = ast.BinaryOp("&&", left, self._relational_expression())
        return left

    def _relational_expression(self):
        left = self._additive_expression()
        token = self.peek()
        if token.kind == PUNCT and token.value in (
            "=", "!=", "<", ">", "<=", ">="
        ):
            self.next()
            return ast.BinaryOp(
                token.value, left, self._additive_expression()
            )
        if self.at_keyword("IN"):
            self.next()
            return ast.InExpr(left, self._expression_list(), negated=False)
        if self.at_keyword("NOT") and self.peek(1).kind == NAME \
                and self.peek(1).value.upper() == "IN":
            self.next()
            self.next()
            return ast.InExpr(left, self._expression_list(), negated=True)
        return left

    def _expression_list(self):
        self.expect_punct("(")
        items = []
        while not self.at_punct(")"):
            items.append(self._expression())
            if not self.accept_punct(","):
                break
        self.expect_punct(")")
        return items

    def _additive_expression(self):
        left = self._multiplicative_expression()
        while True:
            if self.at_punct("+"):
                self.next()
                left = ast.BinaryOp(
                    "+", left, self._multiplicative_expression()
                )
            elif self.at_punct("-"):
                self.next()
                left = ast.BinaryOp(
                    "-", left, self._multiplicative_expression()
                )
            else:
                return left

    def _multiplicative_expression(self):
        left = self._unary_expression()
        while True:
            if self.at_punct("*"):
                self.next()
                left = ast.BinaryOp("*", left, self._unary_expression())
            elif self.at_punct("/"):
                self.next()
                left = ast.BinaryOp("/", left, self._unary_expression())
            else:
                return left

    def _unary_expression(self):
        if self.at_punct("!"):
            self.next()
            return ast.UnaryOp("!", self._unary_expression())
        if self.at_punct("-"):
            self.next()
            return ast.UnaryOp("-", self._unary_expression())
        if self.at_punct("+"):
            self.next()
            return self._unary_expression()
        return self._postfix_expression()

    def _postfix_expression(self):
        expr = self._primary_expression()
        while self.at_punct("["):
            expr = self._array_subscript(expr)
        return expr

    def _array_subscript(self, base):
        """Parse ``[sub, sub, ...]`` — SciSPARQL array dereference."""
        self.expect_punct("[")
        subscripts = []
        while True:
            subscripts.append(self._subscript())
            if not self.accept_punct(","):
                break
        self.expect_punct("]")
        return ast.ArraySubscript(base, subscripts)

    def _subscript(self):
        """One subscript: expr | lo:hi | lo:stride:hi with open bounds."""
        lo = None
        if not self.at_punct(":"):
            lo = self._additive_expression()
            if not self.at_punct(":"):
                return lo                      # single index
        self.expect_punct(":")
        second = None
        if not (self.at_punct(":") or self.at_punct(",")
                or self.at_punct("]")):
            second = self._additive_expression()
        if self.accept_punct(":"):
            hi = None
            if not (self.at_punct(",") or self.at_punct("]")):
                hi = self._additive_expression()
            return ast.RangeSubscript(lo, second, hi)
        return ast.RangeSubscript(lo, None, second)

    def _primary_expression(self):
        token = self.peek()
        if token.kind == PUNCT and token.value == "(":
            # an array constant like (1 2 3) or ((1 2) (3 4)); a single
            # parenthesized number stays a plain expression
            start = self.position
            array = self._try_numeric_collection()
            if array is not None and array.element_count > 1:
                return ast.TermExpr(array)
            self.position = start
            self.next()
            expr = self._expression()
            self.expect_punct(")")
            return expr
        if token.kind == VAR:
            self.next()
            return ast.Var(token.value)
        if token.kind == STRING:
            self.next()
            return ast.TermExpr(self._literal_tail(token.value))
        if token.kind == INTEGER:
            self.next()
            return ast.TermExpr(Literal(token.value))
        if token.kind in (DECIMAL, DOUBLE):
            self.next()
            return ast.TermExpr(Literal(float(token.value)))
        if token.kind == IRI:
            self.next()
            uri = URI(self._resolve_iri(token.value))
            if self.at_punct("("):
                return self._call(uri)
            return ast.TermExpr(uri)
        if token.kind == PNAME:
            self.next()
            uri = self._pname_to_uri(token)
            if self.at_punct("("):
                return self._call(uri)
            return ast.TermExpr(uri)
        if token.kind == NAME:
            return self._name_expression()
        self.error("unexpected token %r in expression" % (token.value,),
                   token)

    def _name_expression(self):
        token = self.next()
        upper = token.value.upper()
        if upper == "TRUE":
            return ast.TermExpr(Literal(True))
        if upper == "FALSE":
            return ast.TermExpr(Literal(False))
        if upper == "FN":
            return self._closure()
        if upper == "NOT":
            self.expect_keyword("EXISTS")
            return ast.ExistsExpr(self._group_graph_pattern(), negated=True)
        if upper == "EXISTS":
            return ast.ExistsExpr(self._group_graph_pattern(), negated=False)
        if upper in AGGREGATES:
            return self._aggregate(upper)
        if upper in BUILTIN_FUNCTIONS:
            if upper in ("NOW", "RAND", "UUID", "STRUUID") \
                    and not self.at_punct("("):
                return ast.FunctionCall(upper, [])
            self.expect_punct("(")
            args = []
            while not self.at_punct(")"):
                args.append(self._expression())
                if not self.accept_punct(","):
                    break
            self.expect_punct(")")
            return ast.FunctionCall(upper, args)
        self.error("unknown function or keyword %r" % token.value, token)

    def _call(self, uri):
        self.expect_punct("(")
        args = []
        while not self.at_punct(")"):
            args.append(self._expression())
            if not self.accept_punct(","):
                break
        self.expect_punct(")")
        return ast.FunctionCall(uri, args)

    def _closure(self):
        """``FN(?x ?y) expression`` — a lexical closure literal."""
        self.expect_punct("(")
        params = []
        while not self.at_punct(")"):
            self.accept_punct(",")
            token = self.next()
            if token.kind != VAR:
                self.error("expected closure parameter", token)
            params.append(ast.Var(token.value))
        self.expect_punct(")")
        body = self._expression()
        return ast.Closure(params, body)

    def _aggregate(self, name):
        self.expect_punct("(")
        distinct = bool(self.accept_keyword("DISTINCT"))
        if name == "COUNT" and self.accept_punct("*"):
            self.expect_punct(")")
            return ast.Aggregate("COUNT", None, distinct)
        expr = self._expression()
        separator = None
        if name == "GROUP_CONCAT" and self.accept_punct(";"):
            self.expect_keyword("SEPARATOR")
            self.expect_punct("=")
            token = self.next()
            if token.kind != STRING:
                self.error("expected string separator", token)
            separator = token.value
        self.expect_punct(")")
        return ast.Aggregate(name, expr, distinct, separator)


_anon_counter = [0]


def _fresh_anon():
    """A fresh non-user-visible variable name for blank-node shorthand."""
    _anon_counter[0] += 1
    return "_anon%d" % _anon_counter[0]
