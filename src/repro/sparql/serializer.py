"""Serialization of query ASTs back to SciSPARQL text.

The inverse of :mod:`repro.sparql.parser`, used for logging, for shipping
parsed queries to a remote SSDM peer, and for the parser round-trip tests
(``parse(serialize(parse(q)))`` must equal ``parse(q)``).
"""

from __future__ import annotations

from typing import List

from repro.arrays.nma import NumericArray
from repro.exceptions import SciSparqlError
from repro.rdf.term import BlankNode, Literal, URI
from repro.sparql import ast


def serialize_query(query):
    """Render any statement AST as SciSPARQL text."""
    if isinstance(query, ast.SelectQuery):
        return _select(query)
    if isinstance(query, ast.AskQuery):
        return "ASK%s %s" % (
            _dataset_clauses(query), _group(query.where)
        )
    if isinstance(query, ast.ConstructQuery):
        return "CONSTRUCT { %s }%s WHERE %s%s" % (
            " . ".join(_triple(t) for t in query.template),
            _dataset_clauses(query),
            _group(query.where),
            _modifiers(query.modifiers),
        )
    if isinstance(query, ast.DescribeQuery):
        parts = ["DESCRIBE"]
        parts.extend(_term_or_var(t) for t in query.terms)
        text = " ".join(parts)
        if query.where is not None:
            text += " WHERE " + _group(query.where)
        return text
    if isinstance(query, ast.FunctionDefinition):
        return "DEFINE FUNCTION %s(%s) AS %s" % (
            _term_or_var(query.name),
            " ".join("?" + p.name for p in query.params),
            _select(query.body)
            if isinstance(query.body, ast.SelectQuery)
            else _expr(query.body),
        )
    if isinstance(query, ast.InsertData):
        return "INSERT DATA { %s }" % _quad_body(query)
    if isinstance(query, ast.DeleteData):
        return "DELETE DATA { %s }" % _quad_body(query)
    if isinstance(query, ast.Modify):
        parts = []
        if query.graph is not None:
            parts.append("WITH %s" % _term_or_var(query.graph))
        if query.delete_template:
            parts.append("DELETE { %s }" % " . ".join(
                _triple(t) for t in query.delete_template
            ))
        if query.insert_template:
            parts.append("INSERT { %s }" % " . ".join(
                _triple(t) for t in query.insert_template
            ))
        parts.append("WHERE " + _group(query.where))
        return " ".join(parts)
    if isinstance(query, ast.ClearGraph):
        if query.graph == "ALL":
            return "CLEAR ALL"
        if query.graph is None:
            return "CLEAR DEFAULT"
        return "CLEAR GRAPH %s" % _term_or_var(query.graph)
    raise SciSparqlError("cannot serialize %r" % (query,))


def _quad_body(update):
    body = " . ".join(_triple(t) for t in update.triples)
    if update.graph is not None:
        return "GRAPH %s { %s }" % (_term_or_var(update.graph), body)
    return body


def _select(query):
    parts = ["SELECT"]
    if query.distinct:
        parts.append("DISTINCT")
    elif query.reduced:
        parts.append("REDUCED")
    if query.projection == "*":
        parts.append("*")
    else:
        for expr, alias in query.projection:
            if alias is None:
                parts.append(_expr(expr))
            else:
                parts.append("(%s AS ?%s)" % (_expr(expr), alias.name))
    text = " ".join(parts)
    text += _dataset_clauses(query)
    text += " WHERE " + _group(query.where)
    text += _modifiers(query.modifiers)
    return text


def _dataset_clauses(query):
    out = ""
    for graph in getattr(query, "from_graphs", []):
        out += " FROM %s" % _term_or_var(graph)
    for graph in getattr(query, "from_named", []):
        out += " FROM NAMED %s" % _term_or_var(graph)
    return out


def _modifiers(modifiers):
    out = ""
    if modifiers.group_by:
        keys = []
        for expr, alias in modifiers.group_by:
            if alias is not None:
                keys.append("(%s AS ?%s)" % (_expr(expr), alias.name))
            elif isinstance(expr, ast.Var):
                keys.append(_expr(expr))
            else:
                keys.append("(%s)" % _expr(expr))
        out += " GROUP BY " + " ".join(keys)
    for having in modifiers.having:
        out += " HAVING (%s)" % _expr(having)
    if modifiers.order_by:
        keys = []
        for expr, ascending in modifiers.order_by:
            keys.append(
                "%s(%s)" % ("ASC" if ascending else "DESC", _expr(expr))
            )
        out += " ORDER BY " + " ".join(keys)
    if modifiers.limit is not None:
        out += " LIMIT %d" % modifiers.limit
    if modifiers.offset is not None:
        out += " OFFSET %d" % modifiers.offset
    return out


def _group(group):
    return "{ %s }" % " ".join(_element(e) for e in group.elements)


def _element(element):
    if isinstance(element, ast.TriplePattern):
        return _triple(element) + " ."
    if isinstance(element, ast.FilterClause):
        return "FILTER(%s)" % _expr(element.expr)
    if isinstance(element, ast.BindClause):
        return "BIND(%s AS ?%s)" % (_expr(element.expr), element.var.name)
    if isinstance(element, ast.OptionalPattern):
        return "OPTIONAL " + _group(element.pattern)
    if isinstance(element, ast.MinusPattern):
        return "MINUS " + _group(element.pattern)
    if isinstance(element, ast.UnionPattern):
        return " UNION ".join(_group(b) for b in element.alternatives)
    if isinstance(element, ast.GraphGraphPattern):
        return "GRAPH %s %s" % (
            _term_or_var(element.graph), _group(element.pattern)
        )
    if isinstance(element, ast.GroupPattern):
        # the parser wraps `{ SELECT ... }` as GroupPattern([SubSelect]);
        # render one brace pair, not two, so round trips are stable
        if len(element.elements) == 1 and isinstance(
            element.elements[0], ast.SubSelect
        ):
            return _element(element.elements[0])
        return _group(element)
    if isinstance(element, ast.ValuesClause):
        header = " ".join("?" + v.name for v in element.variables)
        rows = " ".join(
            "(%s)" % " ".join(
                "UNDEF" if cell is None else _term_or_var(cell)
                for cell in row
            )
            for row in element.rows
        )
        return "VALUES (%s) { %s }" % (header, rows)
    if isinstance(element, ast.SubSelect):
        return "{ %s }" % _select(element.query)
    raise SciSparqlError("cannot serialize element %r" % (element,))


def _triple(pattern):
    return "%s %s %s" % (
        _term_or_var(pattern.subject),
        _predicate(pattern.predicate),
        _term_or_var(pattern.value),
    )


def _predicate(predicate):
    if isinstance(predicate, ast.Var):
        return "?" + predicate.name
    if isinstance(predicate, URI):
        return "<%s>" % predicate.value
    return _path(predicate)


def _path(path):
    if isinstance(path, URI):
        return "<%s>" % path.value
    if isinstance(path, ast.PathLink):
        return "<%s>" % path.uri.value
    if isinstance(path, ast.PathInverse):
        return "^(%s)" % _path(path.path)
    if isinstance(path, ast.PathSequence):
        return "/".join("(%s)" % _path(p) for p in path.parts)
    if isinstance(path, ast.PathAlternative):
        return "|".join("(%s)" % _path(p) for p in path.parts)
    if isinstance(path, ast.PathMod):
        return "(%s)%s" % (_path(path.path), path.modifier)
    if isinstance(path, ast.PathNegated):
        items = ["<%s>" % u.value for u in path.forward]
        items += ["^<%s>" % u.value for u in path.inverse]
        return "!(%s)" % "|".join(items)
    raise SciSparqlError("cannot serialize path %r" % (path,))


def _term_or_var(value):
    if isinstance(value, ast.Var):
        return "?" + value.name
    if isinstance(value, URI):
        return "<%s>" % value.value
    if isinstance(value, Literal):
        return value.n3()
    if isinstance(value, BlankNode):
        return "_:" + value.label
    if isinstance(value, NumericArray):
        return value.n3()
    raise SciSparqlError("cannot serialize term %r" % (value,))


def _expr(expr):
    if isinstance(expr, ast.Var):
        return "?" + expr.name
    if isinstance(expr, ast.TermExpr):
        return _term_or_var(expr.term)
    if isinstance(expr, ast.BinaryOp):
        return "(%s %s %s)" % (
            _expr(expr.left), expr.op, _expr(expr.right)
        )
    if isinstance(expr, ast.UnaryOp):
        return "%s(%s)" % (expr.op, _expr(expr.operand))
    if isinstance(expr, ast.FunctionCall):
        name = expr.name if isinstance(expr.name, str) \
            else "<%s>" % expr.name.value
        return "%s(%s)" % (name, ", ".join(_expr(a) for a in expr.args))
    if isinstance(expr, ast.Aggregate):
        inner = "*" if expr.expr is None else _expr(expr.expr)
        if expr.distinct:
            inner = "DISTINCT " + inner
        if expr.separator is not None:
            return '%s(%s; SEPARATOR="%s")' % (
                expr.name, inner, expr.separator.replace('"', '\\"')
            )
        return "%s(%s)" % (expr.name, inner)
    if isinstance(expr, ast.ArraySubscript):
        subs = []
        for sub in expr.subscripts:
            if isinstance(sub, ast.RangeSubscript):
                # spaces around ':' keep bounds like STR(?x) from lexing
                # as prefixed names (':STR' would otherwise be a pname)
                lo = "" if sub.lo is None else _expr(sub.lo)
                hi = "" if sub.hi is None else _expr(sub.hi)
                if sub.stride is not None:
                    subs.append("%s : %s : %s"
                                % (lo, _expr(sub.stride), hi))
                else:
                    subs.append("%s : %s" % (lo, hi))
            else:
                subs.append(_expr(sub))
        return "%s[%s]" % (_expr(expr.base), ", ".join(subs))
    if isinstance(expr, ast.Closure):
        # the body parses maximally greedily; wrapping the whole closure
        # in parens makes the closing paren terminate the body, so
        # `FN(?a) ?a` used as an operand never swallows its context
        return "(FN(%s) %s)" % (
            " ".join("?" + p.name for p in expr.params), _expr(expr.body)
        )
    if isinstance(expr, ast.ExistsExpr):
        keyword = "NOT EXISTS" if expr.negated else "EXISTS"
        return "%s %s" % (keyword, _group(expr.pattern))
    if isinstance(expr, ast.InExpr):
        keyword = "NOT IN" if expr.negated else "IN"
        return "(%s %s (%s))" % (
            _expr(expr.expr), keyword,
            ", ".join(_expr(c) for c in expr.choices),
        )
    raise SciSparqlError("cannot serialize expression %r" % (expr,))
