"""Resource governor: per-query budgets, admission queueing, breakers.

The load harness made overload *measurable*; this module makes it
*survivable*.  Four cooperating pieces:

``ResourceScope``
    A per-query row/byte budget carried as ambient thread-local state
    (the same pattern as :func:`repro.lifecycle.deadline_scope`).  Every
    materialization point in the engine — idjoin ID-space result
    arrays, DISTINCT/GROUP BY hash state, ORDER BY buffers, the TopK
    heap, OPTIONAL join output, buffer-pool fetches — charges the
    ambient scope; blowing the budget raises a non-retryable
    :class:`~repro.exceptions.ResourceExhaustedError` (wire code
    ``RESOURCE``) that unwinds through the engine's ``finally`` blocks,
    releasing every buffer-pool pin on the way out.  Budgets bound
    *cumulative* materialized work: a row buffered by three operators
    costs three row charges, which is exactly the memory-amplification
    the budget exists to cap.

``ResourceGovernor``
    Process-wide policy: default budgets, a registry of active scopes,
    and a *pressure* signal in [0, 1] — the fraction of the configured
    byte capacity currently charged by in-flight queries (or a forced
    value injected by :class:`~repro.storage.faults.FaultPlan`'s
    ``memory_pressure`` knob).  Under pressure the system degrades
    before it kills: APR stops speculating, and the buffer pool shrinks
    its soft limit, so cache churn yields memory back ahead of any
    query being aborted.

``AdmissionQueue``
    Replaces the server's binary ``max_concurrent`` shed with a bounded,
    deadline-aware queue and two priority lanes.  Interactive waiters
    drain before batch waiters; a full queue sheds batch first (an
    arriving interactive request displaces the youngest queued batch
    request); every rejection is a typed ``OVERLOAD`` carrying a
    ``retry_after_ms`` pacing hint derived from an EWMA of observed
    service time.

``CircuitBreaker``
    Per-endpoint closed/open/half-open breaker used by
    :class:`~repro.replication.ReplicaSetClient` so replica reads route
    around a sick node instead of round-robining errors, then probe it
    back in after a recovery window.
"""

from __future__ import annotations

import threading
import time
import weakref
from contextlib import contextmanager
from typing import Optional

from repro import observability as obs
from repro.exceptions import ResourceExhaustedError, ServerOverloadedError

#: Priority lanes for the admission queue / request ``priority`` field.
INTERACTIVE = "interactive"
BATCH = "batch"
PRIORITIES = (INTERACTIVE, BATCH)

#: Default per-query budgets.  Generous for the reproduction's scales —
#: the macro benchmark's heaviest query materializes ~100k rows — while
#: still a hard wall against the cross-product / unguarded-DISTINCT
#: class of pathological query.
DEFAULT_MAX_QUERY_ROWS = 2_000_000
DEFAULT_MAX_QUERY_BYTES = 128 << 20

#: Default process capacity against which aggregate charged bytes are
#: normalized into the pressure signal.
DEFAULT_CAPACITY_BYTES = 512 << 20


class ResourceScope:
    """Cumulative row/byte account for one query.

    Either budget may be None (unbounded).  ``charge_*`` raise
    :class:`ResourceExhaustedError` once the cumulative total crosses
    the budget; ``check_rows`` pre-checks a bulk materialization (the
    idjoin fast path knows the exact output cardinality before it
    allocates) without charging.
    """

    __slots__ = (
        "max_rows", "max_bytes", "rows", "bytes", "priority",
        "_governor", "exhausted_dimension",
    )

    def __init__(self, max_rows=DEFAULT_MAX_QUERY_ROWS,
                 max_bytes=DEFAULT_MAX_QUERY_BYTES,
                 priority=INTERACTIVE, governor=None):
        self.max_rows = None if max_rows is None else int(max_rows)
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        self.rows = 0
        self.bytes = 0
        self.priority = priority
        self._governor = governor
        self.exhausted_dimension = None

    def charge_rows(self, n, where):
        self.rows += n
        if self.max_rows is not None and self.rows > self.max_rows:
            self._exhaust("rows", self.rows, self.max_rows, where)

    def charge_bytes(self, n, where):
        self.bytes += n
        if self.max_bytes is not None and self.bytes > self.max_bytes:
            self._exhaust("bytes", self.bytes, self.max_bytes, where)

    def check_rows(self, n, where):
        """Pre-check a bulk charge of ``n`` rows without recording it."""
        if self.max_rows is not None and self.rows + n > self.max_rows:
            self._exhaust("rows", self.rows + n, self.max_rows, where)

    def remaining_rows(self):
        if self.max_rows is None:
            return None
        return max(0, self.max_rows - self.rows)

    def remaining_bytes(self):
        if self.max_bytes is None:
            return None
        return max(0, self.max_bytes - self.bytes)

    def _exhaust(self, dimension, charged, budget, where):
        self.exhausted_dimension = dimension
        if self._governor is not None:
            self._governor.note_exhausted(dimension, where)
        obs.event(
            "resource_exhausted",
            dimension=dimension, where=where,
            charged=int(charged), budget=int(budget),
        )
        obs.metrics().inc("governor_resource_aborts_total")
        raise ResourceExhaustedError(
            "query exceeded its %s budget at %s (%d > %d)"
            % (dimension, where, charged, budget)
        )


# -- the ambient (per-thread) scope --------------------------------------------------

_ambient = threading.local()


def current_scope() -> Optional[ResourceScope]:
    """The resource scope governing the current thread's query, or None."""
    return getattr(_ambient, "scope", None)


@contextmanager
def resource_scope(scope):
    """Install ``scope`` as the thread's ambient resource scope.

    Scopes nest; the previous ambient scope is restored on exit.  Passing
    None temporarily clears the scope (background work that must not be
    charged to a request's budget — mirrors ``deadline_scope(None)``).
    """
    previous = getattr(_ambient, "scope", None)
    _ambient.scope = scope
    try:
        yield scope
    finally:
        _ambient.scope = previous


class ResourceGovernor:
    """Process-wide budget policy, active-scope registry, pressure signal."""

    def __init__(self, max_query_rows=DEFAULT_MAX_QUERY_ROWS,
                 max_query_bytes=DEFAULT_MAX_QUERY_BYTES,
                 capacity_bytes=DEFAULT_CAPACITY_BYTES,
                 pressure_threshold=0.75, pool_shrink=0.5):
        self.max_query_rows = max_query_rows
        self.max_query_bytes = max_query_bytes
        self.capacity_bytes = int(capacity_bytes)
        self.pressure_threshold = float(pressure_threshold)
        self.pool_shrink = float(pool_shrink)
        self._lock = threading.Lock()
        self._active = set()
        self._forced_pressure = 0.0
        #: Weak refs to objects with a ``retained_bytes()`` method (the
        #: MVCC snapshot managers of served SSDMs): memory pinned by
        #: retained versions counts toward the pressure signal.
        self._retained_sources = []
        self._counters = {
            "queries": 0,
            "resource_aborts": 0,
            "speculation_suppressed": 0,
            "pool_shrinks": 0,
        }
        self._last_exhausted = None

    @contextmanager
    def scope(self, priority=INTERACTIVE, max_rows=None, max_bytes=None):
        """Open a budgeted scope, install it as ambient, account it.

        ``max_rows`` / ``max_bytes`` override the governor defaults for
        this query (None means "use the default"; pass 0 for unbounded
        is *not* supported — use a governor configured with None).
        """
        scope = ResourceScope(
            max_rows=self.max_query_rows if max_rows is None else max_rows,
            max_bytes=self.max_query_bytes if max_bytes is None else max_bytes,
            priority=priority, governor=self,
        )
        with self._lock:
            self._active.add(scope)
            self._counters["queries"] += 1
        try:
            with resource_scope(scope):
                yield scope
        finally:
            with self._lock:
                self._active.discard(scope)
            obs.metrics().set_gauge("governor_pressure", round(self.pressure(), 4))

    def note_exhausted(self, dimension, where):
        with self._lock:
            self._counters["resource_aborts"] += 1
            self._last_exhausted = {"dimension": dimension, "where": where}

    # -- pressure ---------------------------------------------------------------

    def set_forced_pressure(self, value):
        """Deterministically pin the pressure signal (FaultPlan knob)."""
        with self._lock:
            self._forced_pressure = float(value or 0.0)

    def add_retained_source(self, source):
        """Count ``source.retained_bytes()`` toward the pressure signal.

        Held weakly: a garbage-collected source silently drops out, so
        short-lived test servers cannot accumulate into a leak.
        """
        with self._lock:
            self._retained_sources = [
                ref for ref in self._retained_sources if ref() is not None
            ]
            if not any(ref() is source for ref in self._retained_sources):
                self._retained_sources.append(weakref.ref(source))

    def retained_bytes(self):
        """Bytes pinned by registered MVCC retained versions."""
        with self._lock:
            sources = [ref() for ref in self._retained_sources]
        # call outside the governor lock: a source has its own lock and
        # lock-order inversion here would be an invisible deadlock trap
        return sum(
            int(source.retained_bytes())
            for source in sources if source is not None
        )

    def pressure(self):
        """Max of forced pressure and charged-bytes / capacity, in [0, ~]."""
        with self._lock:
            forced = self._forced_pressure
            used = sum(s.bytes for s in self._active)
        used += self.retained_bytes()
        return max(forced, used / float(self.capacity_bytes))

    def under_pressure(self):
        return self.pressure() >= self.pressure_threshold

    def speculation_allowed(self):
        """Gate for APR speculation/prefetch; counts suppressions."""
        if not self._active and not self._forced_pressure:
            return True
        if self.under_pressure():
            with self._lock:
                self._counters["speculation_suppressed"] += 1
            obs.metrics().inc("governor_speculation_suppressed_total")
            return False
        return True

    def pool_soft_limit(self, max_bytes):
        """Effective buffer-pool byte limit: shrunk under pressure."""
        if not self._active and not self._forced_pressure:
            return max_bytes
        if self.under_pressure():
            with self._lock:
                self._counters["pool_shrinks"] += 1
            return int(max_bytes * self.pool_shrink)
        return max_bytes

    def snapshot(self):
        with self._lock:
            counters = dict(self._counters)
            active = len(self._active)
            charged_rows = sum(s.rows for s in self._active)
            charged_bytes = sum(s.bytes for s in self._active)
            last = dict(self._last_exhausted) if self._last_exhausted else None
        return {
            "active_scopes": active,
            "charged_rows": charged_rows,
            "charged_bytes": charged_bytes,
            "retained_bytes": self.retained_bytes(),
            "pressure": round(self.pressure(), 4),
            "under_pressure": self.under_pressure(),
            "max_query_rows": self.max_query_rows,
            "max_query_bytes": self.max_query_bytes,
            "capacity_bytes": self.capacity_bytes,
            "counters": counters,
            "last_exhausted": last,
        }


# -- process-wide governor singleton -------------------------------------------------

_governor_lock = threading.Lock()
_governor = None


def get_governor() -> ResourceGovernor:
    """The process-wide governor (created on first use).

    The buffer pool and APR consult this singleton for the pressure
    signal, so an :class:`SSDMServer` uses it by default — wiring a
    private governor into a server keeps admission/budgets private but
    leaves the degradation hooks on the shared signal.
    """
    global _governor
    with _governor_lock:
        if _governor is None:
            _governor = ResourceGovernor()
        return _governor


def set_governor(governor):
    """Install (or with None, reset) the process-wide governor."""
    global _governor
    with _governor_lock:
        previous = _governor
        _governor = governor
    return previous


# -- admission queue -----------------------------------------------------------------


class _Waiter:
    __slots__ = ("priority", "shed")

    def __init__(self, priority):
        self.priority = priority
        self.shed = False


class AdmissionQueue:
    """Bounded, deadline-aware admission with two priority lanes.

    ``max_active`` concurrent slots; up to ``max_queue`` requests wait
    (``max_queue=0`` reproduces the old binary shed).  Interactive
    waiters are admitted before batch waiters, FIFO within a lane.
    When the queue is full, an arriving *interactive* request displaces
    the youngest queued *batch* request; an arriving batch request is
    shed immediately.  A waiter is shed once it has waited
    ``max_wait_ms`` or its request deadline, whichever is sooner —
    queueing a request past its own deadline only manufactures a
    guaranteed TIMEOUT.

    Every shed raises :class:`ServerOverloadedError` with a
    ``retry_after_ms`` hint: (queue depth + active) x the EWMA of
    observed service time, normalized by the slot count — i.e. roughly
    when the current backlog should have drained.
    """

    def __init__(self, max_active=64, max_queue=16, max_wait_ms=1000.0,
                 clock=time.monotonic):
        self.max_active = None if max_active is None else int(max_active)
        self.max_queue = max(0, int(max_queue))
        self.max_wait_ms = float(max_wait_ms)
        self._clock = clock
        self._cond = threading.Condition()
        self._active = 0
        self._waiters = []
        self._service_ewma = 0.05
        self.counters = {
            "admitted": 0, "queued": 0,
            "shed_interactive": 0, "shed_batch": 0,
            "displaced": 0, "shed_wait_timeout": 0,
        }

    @property
    def active(self):
        return self._active

    @property
    def depth(self):
        return len(self._waiters)

    def admit(self, priority=INTERACTIVE, deadline=None):
        """Block until admitted; raise ``ServerOverloadedError`` if shed."""
        with self._cond:
            if self.max_active is None or (
                self._active < self.max_active and not self._waiters
            ):
                self._active += 1
                self.counters["admitted"] += 1
                return
            if len(self._waiters) >= self.max_queue:
                victim = None
                if priority == INTERACTIVE:
                    for waiter in reversed(self._waiters):
                        if waiter.priority == BATCH and not waiter.shed:
                            victim = waiter
                            break
                if victim is None:
                    raise self._shed(priority, "admission queue full")
                victim.shed = True
                self._waiters.remove(victim)
                self.counters["displaced"] += 1
                self._cond.notify_all()
            waiter = _Waiter(priority)
            self._waiters.append(waiter)
            self.counters["queued"] += 1
            give_up_at = self._clock() + self.max_wait_ms / 1000.0
            while True:
                if waiter.shed:
                    raise self._shed(
                        priority, "displaced by an interactive request",
                        dequeued=True,
                    )
                if self._active < self.max_active and self._head() is waiter:
                    self._waiters.remove(waiter)
                    self._active += 1
                    self.counters["admitted"] += 1
                    return
                budget = give_up_at - self._clock()
                if deadline is not None:
                    left = deadline.remaining()
                    if left is not None:
                        budget = min(budget, left)
                    if deadline.cancelled:
                        budget = 0.0
                if budget <= 0:
                    self._waiters.remove(waiter)
                    self._cond.notify_all()
                    self.counters["shed_wait_timeout"] += 1
                    raise self._shed(
                        priority, "timed out waiting for admission",
                        dequeued=True,
                    )
                self._cond.wait(budget)

    def release(self, elapsed_seconds=None):
        """Free a slot; feed the service-time EWMA behind the hint."""
        with self._cond:
            self._active -= 1
            if elapsed_seconds is not None and elapsed_seconds >= 0:
                self._service_ewma = (
                    0.8 * self._service_ewma + 0.2 * float(elapsed_seconds)
                )
            self._cond.notify_all()

    def retry_after_ms(self):
        """Pacing hint for a request shed right now (clamped 10..5000)."""
        slots = max(1, self.max_active or 1)
        backlog = len(self._waiters) + self._active
        hint = backlog * self._service_ewma * 1000.0 / slots
        return int(min(5000.0, max(10.0, hint)))

    def _head(self):
        for waiter in self._waiters:
            if waiter.priority == INTERACTIVE:
                return waiter
        return self._waiters[0] if self._waiters else None

    def _shed(self, priority, reason, dequeued=False):
        lane = "shed_batch" if priority == BATCH else "shed_interactive"
        self.counters[lane] += 1
        obs.metrics().inc("admission_shed_total")
        obs.event("admission_shed", priority=priority, reason=reason)
        return ServerOverloadedError(
            "server overloaded (%s)" % reason,
            retry_after_ms=self.retry_after_ms(),
        )

    def snapshot(self):
        with self._cond:
            return {
                "active": self._active,
                "queue_depth": len(self._waiters),
                "max_active": self.max_active,
                "max_queue": self.max_queue,
                "max_wait_ms": self.max_wait_ms,
                "service_ewma_ms": round(self._service_ewma * 1000.0, 3),
                "counters": dict(self.counters),
            }


# -- circuit breaker -----------------------------------------------------------------

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Closed/open/half-open breaker on consecutive failures.

    ``failure_threshold`` consecutive failures open the breaker; after
    ``recovery_seconds`` one probe is allowed (half-open).  A probe
    success closes the breaker, a probe failure re-opens it for another
    recovery window.  ``clock`` is injectable for deterministic tests.
    """

    def __init__(self, failure_threshold=3, recovery_seconds=1.0,
                 clock=time.monotonic):
        self.failure_threshold = int(failure_threshold)
        self.recovery_seconds = float(recovery_seconds)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        self.times_opened = 0

    @property
    def state(self):
        with self._lock:
            if (
                self._state == OPEN
                and self._clock() - self._opened_at >= self.recovery_seconds
            ):
                return HALF_OPEN
            return self._state

    def allow(self):
        """Whether a request may be sent to this endpoint right now."""
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._clock() - self._opened_at >= self.recovery_seconds:
                    self._state = HALF_OPEN
                    self._probing = True
                    return True
                return False
            if self._probing:
                return False
            self._probing = True
            return True

    def on_success(self):
        with self._lock:
            self._state = CLOSED
            self._failures = 0
            self._probing = False

    def on_failure(self):
        with self._lock:
            self._probing = False
            if self._state == HALF_OPEN:
                self._state = OPEN
                self._opened_at = self._clock()
                self.times_opened += 1
                return
            self._failures += 1
            if self._state == CLOSED and self._failures >= self.failure_threshold:
                self._state = OPEN
                self._opened_at = self._clock()
                self.times_opened += 1
                obs.metrics().inc("replica_breaker_opened_total")

    def snapshot(self):
        return {
            "state": self.state,
            "failures": self._failures,
            "times_opened": self.times_opened,
        }
