"""Solution mappings (variable bindings).

A :class:`Bindings` is an immutable mapping from variable names to RDF
terms or array values.  Extension returns a new object sharing structure
with the parent, which keeps the correlated nested-loop join cheap.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional


class Bindings:
    """An immutable solution mapping.

    >>> b = Bindings().extended("x", 1)
    >>> b.get("x")
    1
    >>> b.extended("y", 2) is b
    False
    """

    __slots__ = ("_values",)

    EMPTY: "Bindings"

    def __init__(self, values=None):
        self._values: Dict[str, object] = dict(values) if values else {}

    @classmethod
    def adopt(cls, values):
        """Wrap an already-built dict without copying.

        The caller must hand over ownership: the dict must never be
        mutated afterwards.  This is the constructor for hot paths
        (pattern matching, ID-space decode) where the mapping was just
        assembled and the defensive copy in ``__init__`` would double
        the allocation cost per solution.
        """
        self = cls.__new__(cls)
        self._values = values
        return self

    def get(self, name, default=None):
        return self._values.get(name, default)

    def __contains__(self, name):
        return name in self._values

    def __iter__(self):
        return iter(self._values)

    def __len__(self):
        return len(self._values)

    def items(self):
        return self._values.items()

    def extended(self, name, value):
        """A new Bindings with one more (or replaced) binding."""
        values = dict(self._values)
        values[name] = value
        return Bindings.adopt(values)

    def extended_many(self, pairs):
        values = dict(self._values)
        values.update(pairs)
        return Bindings.adopt(values)

    def project(self, names):
        """Keep only the named variables (absent ones stay absent)."""
        return Bindings.adopt({
            name: value for name, value in self._values.items()
            if name in names
        })

    def compatible(self, other):
        """SPARQL compatibility: no shared variable bound differently."""
        small, large = (
            (self._values, other._values)
            if len(self._values) <= len(other._values)
            else (other._values, self._values)
        )
        for name, value in small.items():
            other_value = large.get(name, _MISSING)
            if other_value is not _MISSING and other_value != value:
                return False
        return True

    def shares_variable(self, other):
        return any(name in other._values for name in self._values)

    def merge(self, other):
        values = dict(self._values)
        values.update(other._values)
        return Bindings.adopt(values)

    def as_dict(self):
        return dict(self._values)

    def mapping(self):
        """The internal name→value dict (treat as read-only).

        For hot consumers that do one lookup per result cell; the copy
        in :meth:`as_dict` would dominate on wide results.
        """
        return self._values

    def __eq__(self, other):
        return isinstance(other, Bindings) and self._values == other._values

    def __hash__(self):
        return hash(frozenset(
            (name, _hash_value(value))
            for name, value in self._values.items()
        ))

    def __repr__(self):
        inner = ", ".join(
            "?%s=%r" % (name, value)
            for name, value in sorted(self._values.items())
        )
        return "{%s}" % inner


class _Missing:
    pass


_MISSING = _Missing()
Bindings.EMPTY = Bindings()


def _hash_value(value):
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)
