"""Property-path evaluation (dissertation section 3.4).

Paths are evaluated against one graph, directed by which endpoints are
already bound: transitive closures run a breadth-first search from the
bound side, alternatives merge branch results, sequences chain through
fresh intermediate nodes.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Optional, Set, Tuple

from repro.exceptions import QueryError
from repro.rdf.term import URI
from repro.sparql import ast


def eval_path(graph, path, subject=None, value=None):
    """Yield (subject, value) pairs connected by ``path``.

    ``subject`` / ``value`` are concrete terms or None (unbound).
    Duplicate pairs are suppressed (path semantics are set-based).
    """
    seen = set()
    for pair in _eval(graph, path, subject, value):
        if pair not in seen:
            seen.add(pair)
            yield pair


def _eval(graph, path, subject, value):
    if isinstance(path, URI):
        yield from _link(graph, path, subject, value)
    elif isinstance(path, ast.PathLink):
        yield from _link(graph, path.uri, subject, value)
    elif isinstance(path, ast.PathInverse):
        for v, s in _eval(graph, path.path, value, subject):
            yield (s, v)
    elif isinstance(path, ast.PathAlternative):
        for part in path.parts:
            yield from _eval(graph, part, subject, value)
    elif isinstance(path, ast.PathSequence):
        yield from _sequence(graph, path.parts, subject, value)
    elif isinstance(path, ast.PathMod):
        yield from _modified(graph, path, subject, value)
    elif isinstance(path, ast.PathNegated):
        yield from _negated(graph, path, subject, value)
    else:
        raise QueryError("unsupported path %r" % (path,))


def _link(graph, predicate, subject, value):
    for triple in graph.triples(subject, predicate, value):
        yield (triple.subject, triple.value)


def _sequence(graph, parts, subject, value):
    if len(parts) == 1:
        yield from _eval(graph, parts[0], subject, value)
        return
    first, rest = parts[0], parts[1:]
    # drive from the bound side when possible
    if subject is not None or value is None:
        for s, mid in _eval(graph, first, subject, None):
            for _, v in _eval(graph, ast.PathSequence(rest), mid, value):
                yield (s, v)
    else:
        for mid, v in _eval(graph, ast.PathSequence(rest), None, value):
            for s, _ in _eval(graph, first, subject, mid):
                yield (s, v)


def _modified(graph, path, subject, value):
    inner = path.path
    modifier = path.modifier
    if modifier == "?":
        if subject is not None and (value is None or subject == value):
            yield (subject, subject)
        elif subject is None and value is not None:
            yield (value, value)
        elif subject is None and value is None:
            for node in _all_nodes(graph):
                yield (node, node)
        yield from _eval(graph, inner, subject, value)
        return
    reflexive = modifier == "*"
    if subject is not None:
        yield from _closure_from(graph, inner, subject, value, reflexive)
    elif value is not None:
        for v, s in _closure_from(
            graph, ast.PathInverse(inner), value, subject, reflexive
        ):
            yield (s, v)
    else:
        for start in _all_nodes(graph):
            yield from _closure_from(graph, inner, start, None, reflexive)


def _closure_from(graph, inner, start, value, reflexive):
    """BFS transitive closure of ``inner`` starting at ``start``."""
    visited: Set[object] = set()
    queue = deque()
    if reflexive:
        queue.append(start)
        visited.add(start)
        if value is None or start == value:
            yield (start, start)
    else:
        for _, nxt in _eval(graph, inner, start, None):
            if nxt not in visited:
                visited.add(nxt)
                queue.append(nxt)
                if value is None or nxt == value:
                    yield (start, nxt)
    while queue:
        node = queue.popleft()
        for _, nxt in _eval(graph, inner, node, None):
            if nxt not in visited:
                visited.add(nxt)
                queue.append(nxt)
                if value is None or nxt == value:
                    yield (start, nxt)


def _negated(graph, path, subject, value):
    """Negated property set ``!(p1 | ... | ^q1 | ...)``.

    SPARQL 1.1 splits the set by direction: the forward members
    restrict a forward edge scan, the inverse members an inverse edge
    scan, and each scan happens only when its side of the set is
    non-empty — ``!(^q)`` matches *no* forward edges, and ``!(p)``
    must not touch the reverse index at all (the previous code ran the
    reverse scan ``graph.triples(value, None, subject)`` even with no
    inverse members: a full wasted graph pass per evaluation whose
    filter then dropped every triple).
    """
    forward = set(path.forward)
    inverse = set(path.inverse)
    # The forward scan runs for a pure-forward set (!(p): any forward
    # edge off the list) and for the forward half of a mixed set; a
    # purely-inverse set (!(^q)) matches reverse edges only, so its
    # forward scan is skipped entirely.
    if forward or not inverse:
        for triple in graph.triples(subject, None, value):
            if triple.property not in forward:
                yield (triple.subject, triple.value)
    if inverse:
        for triple in graph.triples(value, None, subject):
            if triple.property not in inverse:
                yield (triple.value, triple.subject)


def _all_nodes(graph):
    seen = set()
    for triple in graph.triples():
        for node in (triple.subject, triple.value):
            if node not in seen:
                seen.add(node)
                yield node
