"""Aggregate computation for GROUP BY queries (section 3.5).

Values arriving here are runtime values; per SPARQL semantics, rows whose
aggregated expression errors are skipped rather than failing the group.
"""

from __future__ import annotations

from typing import List, Optional

from repro.arrays.nma import NumericArray
from repro.arrays.proxy import ArrayProxy
from repro.exceptions import EvaluationError
from repro.rdf.term import term_key
from repro.engine.functions import string_value, to_term


def compute(name, values, distinct=False, separator=None):
    """Compute one aggregate over the collected (non-error) values."""
    if distinct:
        values = _distinct(values)
    if name == "COUNT":
        return len(values)
    if name == "SAMPLE":
        if not values:
            raise EvaluationError("SAMPLE of empty group")
        return values[0]
    if name == "GROUP_CONCAT":
        separator = " " if separator is None else separator
        return separator.join(string_value(v) for v in values)
    if name == "SUM":
        return _numeric_sum(values)
    if name == "AVG":
        if not values:
            raise EvaluationError("AVG of empty group")
        return _numeric_sum(values) / len(values)
    if name in ("MIN", "MAX"):
        if not values:
            raise EvaluationError("%s of empty group" % name)
        keyed = [(term_key(to_term(v)), v) for v in values]
        keyed.sort(key=lambda pair: pair[0])
        return keyed[0][1] if name == "MIN" else keyed[-1][1]
    raise EvaluationError("unknown aggregate %s" % name)


def _numeric_sum(values):
    total = 0
    for value in values:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise EvaluationError(
                "non-numeric value %r in numeric aggregate" % (value,)
            )
        total += value
    return total


def _distinct(values):
    seen = []
    out = []
    for value in values:
        marker = to_term(value) if not isinstance(
            value, (NumericArray, ArrayProxy)
        ) else value
        if marker not in seen:
            seen.append(marker)
            out.append(value)
    return out
