"""Aggregate computation for GROUP BY queries (section 3.5).

Values arriving here are runtime values; per SPARQL semantics, rows whose
aggregated expression errors are skipped rather than failing the group.
"""

from __future__ import annotations

import numbers
from decimal import Decimal
from typing import List, Optional

from repro.arrays.nma import NumericArray
from repro.arrays.proxy import ArrayProxy
from repro.exceptions import EvaluationError
from repro.rdf.term import Literal, term_key
from repro.engine.functions import string_value, to_term


def compute(name, values, distinct=False, separator=None):
    """Compute one aggregate over the collected (non-error) values."""
    if distinct:
        values = _distinct(values)
    if name == "COUNT":
        return len(values)
    if name == "SAMPLE":
        if not values:
            raise EvaluationError("SAMPLE of empty group")
        return values[0]
    if name == "GROUP_CONCAT":
        separator = " " if separator is None else separator
        return separator.join(string_value(v) for v in values)
    if name == "SUM":
        return _numeric_sum(values)
    if name == "AVG":
        if not values:
            raise EvaluationError("AVG of empty group")
        return _numeric_sum(values) / len(values)
    if name in ("MIN", "MAX"):
        if not values:
            raise EvaluationError("%s of empty group" % name)
        keyed = [(term_key(to_term(v)), v) for v in values]
        keyed.sort(key=lambda pair: pair[0])
        return keyed[0][1] if name == "MIN" else keyed[-1][1]
    raise EvaluationError("unknown aggregate %s" % name)


def _as_number(value):
    """The Python number of one aggregated runtime value, or None.

    SUM/AVG must accept every *numeric* runtime representation, not just
    raw int/float: ``xsd:decimal`` literals reach the aggregates still
    wrapped (``runtime()`` only unwraps int/float/bool/str literals), as
    do raw :class:`~decimal.Decimal` and :class:`~fractions.Fraction`
    bindings.  Booleans and strings stay rejected — SPARQL numeric
    aggregates error (skipping the group's binding) on them.
    """
    if isinstance(value, Literal):
        value = value.value
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float, Decimal)):
        return value
    # Fraction and other exact rationals register as numbers.Real;
    # Decimal deliberately does not, hence the explicit case above.
    if isinstance(value, numbers.Real):
        return value
    return None


def _numeric_sum(values):
    total = 0
    for value in values:
        number = _as_number(value)
        if number is None:
            raise EvaluationError(
                "non-numeric value %r in numeric aggregate" % (value,)
            )
        try:
            total += number
        except TypeError:
            # Decimal refuses to mix with float: a heterogeneous group
            # degrades to float arithmetic rather than erroring out
            total = float(total) + float(number)
    return total


def _distinct(values):
    """Order-preserving dedup in one pass over the group.

    The previous list-scan (``marker not in seen``) was O(n²) per group
    and crashed with a raw TypeError on unhashable odd values; this
    keys a set via :func:`_distinct_key` instead.
    """
    from repro.governor import current_scope

    scope = current_scope()
    seen = set()
    out = []
    for value in values:
        key = _distinct_key(value)
        if key in seen:
            continue
        if scope is not None:
            scope.charge_rows(1, "aggregate distinct state")
        seen.add(key)
        out.append(value)
    return out


def _distinct_key(value):
    """A hashable key with the same distinctions the old term-equality
    scan made: arrays dedupe by content (NumericArray hashes its bytes)
    or proxy identity, terms by ``term_key`` widened with datatype /
    language / value type — so ``"1"^^xsd:integer`` stays distinct from
    ``"1.0"^^xsd:double`` and a plain ``"a"`` from ``"a"@en``, which a
    bare ``term_key`` would collapse.  Values no term can represent
    dedupe by identity instead of erroring the whole aggregate."""
    if isinstance(value, (NumericArray, ArrayProxy)):
        return value
    try:
        term = to_term(value)
    except EvaluationError:
        return ("opaque", id(value))
    if isinstance(term, Literal):
        return (term_key(term), term.datatype.value, term.lang,
                type(term.value).__name__)
    return term_key(term)
