"""Built-in function library: SPARQL 1.1 scalar functions plus the
SciSPARQL array built-ins (dissertation section 4.1.3).

Functions here receive already-evaluated *runtime values*:

- Python ``int`` / ``float`` / ``bool`` / ``str`` for plain literals,
- :class:`~repro.rdf.URI` / :class:`~repro.rdf.BlankNode` for resources,
- :class:`~repro.rdf.Literal` for language-tagged or exotic typed literals,
- :class:`~repro.arrays.NumericArray` / :class:`~repro.arrays.ArrayProxy`
  for arrays,
- callables for function values (closures, function references).

Special forms needing unevaluated arguments (BOUND, IF, COALESCE, EXISTS)
live in :mod:`repro.engine.expr`.
"""

from __future__ import annotations

import math
import re
import uuid
from typing import Callable, Dict, List

from repro.arrays.nma import NumericArray
from repro.arrays.proxy import ArrayProxy
from repro.arrays import ops as array_ops
from repro.exceptions import EvaluationError, TypeMismatchError
from repro.rdf.term import BlankNode, Literal, URI


def runtime(term):
    """Convert an RDF term to its runtime value."""
    if isinstance(term, Literal):
        if term.lang is None and isinstance(
            term.value, (int, float, bool, str)
        ):
            return term.value
        return term
    return term


def to_term(value):
    """Convert a runtime value back to an RDF term for storage/output."""
    if isinstance(value, (URI, BlankNode, Literal, NumericArray,
                          ArrayProxy)):
        return value
    if isinstance(value, (bool, int, float, str)):
        return Literal(value)
    raise EvaluationError("cannot convert %r to an RDF term" % (value,))


def ensure_array(value):
    """Resolve proxies and require an array value."""
    if isinstance(value, ArrayProxy):
        value = value.resolve()
    if isinstance(value, NumericArray):
        return value
    raise TypeMismatchError("expected an array, got %r" % (value,))


def ensure_number(value):
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, Literal) and value.is_numeric():
        return value.value
    if isinstance(value, ArrayProxy):
        value = value.resolve()
    if isinstance(value, NumericArray) and value.ndim == 0:
        return value.to_numpy().item()
    raise TypeMismatchError("expected a number, got %r" % (value,))


def ensure_string(value):
    if isinstance(value, str):
        return value
    if isinstance(value, Literal) and isinstance(value.value, str):
        return value.value
    raise TypeMismatchError("expected a string, got %r" % (value,))


def string_value(value):
    """The STR() of any runtime value."""
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, URI):
        return value.value
    if isinstance(value, Literal):
        return value.lexical_form()
    if isinstance(value, BlankNode):
        return str(value)
    if isinstance(value, (NumericArray, ArrayProxy)):
        if isinstance(value, ArrayProxy):
            value = value.resolve()
        return str(value.to_nested_lists())
    raise TypeMismatchError("STR of %r" % (value,))


def effective_boolean_value(value):
    """SPARQL EBV (section 3.3.3): non-zero numbers, non-empty strings,
    all URIs and dates count as true; arrays are true when non-empty."""
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    if isinstance(value, str):
        return len(value) > 0
    if isinstance(value, Literal):
        if isinstance(value.value, bool):
            return value.value
        if value.is_numeric():
            return value.value != 0
        if isinstance(value.value, str):
            return len(value.value) > 0
        return True
    if isinstance(value, (URI, BlankNode)):
        return True
    if isinstance(value, ArrayProxy):
        return value.element_count > 0
    if isinstance(value, NumericArray):
        return value.element_count > 0
    if value is None:
        raise EvaluationError("EBV of unbound value")
    return True


# ---------------------------------------------------------------------------
# scalar built-ins
# ---------------------------------------------------------------------------

def _fn_str(args):
    return string_value(args[0])


def _fn_lang(args):
    value = args[0]
    if isinstance(value, Literal) and value.lang:
        return value.lang
    if isinstance(value, (str, Literal)):
        return ""
    raise TypeMismatchError("LANG of non-literal")


def _fn_langmatches(args):
    tag = ensure_string(args[0]).lower()
    pattern = ensure_string(args[1]).lower()
    if pattern == "*":
        return tag != ""
    return tag == pattern or tag.startswith(pattern + "-")


def _fn_datatype(args):
    value = args[0]
    if isinstance(value, Literal):
        return value.datatype
    if isinstance(value, bool):
        return Literal(value).datatype
    if isinstance(value, (int, float, str)):
        return Literal(value).datatype
    raise TypeMismatchError("DATATYPE of non-literal")


def _fn_iri(args):
    return URI(string_value(args[0]))


def _fn_bnode(args):
    return BlankNode()


def _numeric_unary(fn):
    def wrapped(args):
        return fn(ensure_number(args[0]))
    return wrapped


def _fn_round(args):
    value = ensure_number(args[0])
    return math.floor(value + 0.5)


def _fn_concat(args):
    return "".join(ensure_string(a) for a in args)


def _fn_substr(args):
    text = ensure_string(args[0])
    start = int(ensure_number(args[1]))          # 1-based per SPARQL
    if len(args) > 2:
        length = int(ensure_number(args[2]))
        return text[start - 1:start - 1 + length]
    return text[start - 1:]


def _fn_replace(args):
    text = ensure_string(args[0])
    pattern = ensure_string(args[1])
    replacement = ensure_string(args[2])
    flags = _regex_flags(args[3]) if len(args) > 3 else 0
    return re.sub(pattern, replacement, text, flags=flags)


def _regex_flags(value):
    flags = 0
    for char in ensure_string(value):
        if char == "i":
            flags |= re.IGNORECASE
        elif char == "s":
            flags |= re.DOTALL
        elif char == "m":
            flags |= re.MULTILINE
        elif char == "x":
            flags |= re.VERBOSE
    return flags


def _fn_regex(args):
    text = ensure_string(args[0])
    pattern = ensure_string(args[1])
    flags = _regex_flags(args[2]) if len(args) > 2 else 0
    return re.search(pattern, text, flags=flags) is not None


def _fn_strdt(args):
    return Literal.from_lexical(ensure_string(args[0]), args[1])


def _fn_strlang(args):
    return Literal(ensure_string(args[0]), lang=ensure_string(args[1]))


def _fn_sameterm(args):
    return to_term(args[0]) == to_term(args[1])


def _fn_isnumeric(args):
    value = args[0]
    return isinstance(value, (int, float)) and not isinstance(value, bool) \
        or (isinstance(value, Literal) and value.is_numeric())


# ---------------------------------------------------------------------------
# SciSPARQL array built-ins (section 4.1.3)
# ---------------------------------------------------------------------------

def _fn_adims(args):
    """adims(a) — the shape of an array, as a 1-D array of extents.
    Works on proxies without resolving them."""
    value = args[0]
    if isinstance(value, (NumericArray, ArrayProxy)):
        return NumericArray(list(value.shape))
    raise TypeMismatchError("ADIMS of non-array %r" % (value,))


def _fn_aelt(args):
    """aelt(a, i, j, ...) — element access with 1-based indexes."""
    value = args[0]
    indexes = [int(ensure_number(a)) - 1 for a in args[1:]]
    if isinstance(value, ArrayProxy):
        return value.subscript(indexes).resolve()
    if isinstance(value, NumericArray):
        result = value.subscript(indexes)
        if isinstance(result, NumericArray) and result.ndim == 0:
            return result.to_numpy().item()
        return result
    raise TypeMismatchError("AELT of non-array %r" % (value,))


def _fn_array(args):
    """array(v1, v2, ...) — construct a 1-D array from numbers, or stack
    same-shaped arrays along a new first dimension."""
    if not args:
        raise EvaluationError("ARRAY() needs at least one element")
    if all(isinstance(a, (int, float)) and not isinstance(a, bool)
           for a in args):
        return NumericArray(list(args))
    arrays = [ensure_array(a) for a in args]
    import numpy as np
    return NumericArray(np.stack([a.to_numpy() for a in arrays]))


def _array_aggregate(reducer, delegated_op):
    def wrapped(args):
        value = args[0]
        if isinstance(value, ArrayProxy):
            # AAPR: aggregate without materializing the whole view
            resolver = getattr(value.store, "_default_resolver", None)
            if resolver is None:
                from repro.storage.apr import APRResolver
                resolver = APRResolver(value.store)
                value.store._default_resolver = resolver
            return resolver.resolve_aggregate(value, delegated_op)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return reducer(NumericArray([value]))
        return reducer(ensure_array(value))
    return wrapped


def _fn_array_count(args):
    value = args[0]
    if isinstance(value, (NumericArray, ArrayProxy)):
        return value.element_count
    return 1


def _callable_value(value):
    if callable(value):
        return value
    raise TypeMismatchError(
        "expected a function value (closure or function name), got %r"
        % (value,)
    )


def _fn_array_map(args):
    fn = _callable_value(args[0])
    arrays = [ensure_array(a) for a in args[1:]]
    return array_ops.array_map(fn, *arrays)


def _fn_array_condense(args):
    fn = _callable_value(args[0])
    array = ensure_array(args[1])
    axis = int(ensure_number(args[2])) - 1 if len(args) > 2 else None
    return array_ops.array_condense(fn, array, axis)


def _fn_array_build(args):
    fn = _callable_value(args[-1]) if callable(args[-1]) else None
    if fn is not None:
        shape = [int(ensure_number(a)) for a in args[:-1]]
    else:
        fn = _callable_value(args[0])
        shape = [int(ensure_number(a)) for a in args[1:]]
    return array_ops.array_build(shape, fn)


def _fn_transpose(args):
    value = args[0]
    permutation = None
    if len(args) > 1:
        permutation = tuple(int(ensure_number(a)) - 1 for a in args[1:])
    if isinstance(value, (NumericArray, ArrayProxy)):
        return value.transpose(permutation)
    raise TypeMismatchError("TRANSPOSE of non-array %r" % (value,))


def _fn_isarray(args):
    return isinstance(args[0], (NumericArray, ArrayProxy))


#: Dispatch table: builtin name -> callable(list-of-values) -> value.
BUILTINS: Dict[str, Callable] = {
    "STR": _fn_str,
    "LANG": _fn_lang,
    "LANGMATCHES": _fn_langmatches,
    "DATATYPE": _fn_datatype,
    "IRI": _fn_iri,
    "URI": _fn_iri,
    "BNODE": _fn_bnode,
    "ABS": _numeric_unary(abs),
    "CEIL": _numeric_unary(math.ceil),
    "FLOOR": _numeric_unary(math.floor),
    "ROUND": _fn_round,
    "SQRT": _numeric_unary(math.sqrt),
    "EXP": _numeric_unary(math.exp),
    "LN": _numeric_unary(math.log),
    "LOG10": _numeric_unary(math.log10),
    "SIN": _numeric_unary(math.sin),
    "COS": _numeric_unary(math.cos),
    "TAN": _numeric_unary(math.tan),
    "POWER": lambda args: math.pow(
        ensure_number(args[0]), ensure_number(args[1])
    ),
    "MOD": lambda args: ensure_number(args[0]) % ensure_number(args[1]),
    "CONCAT": _fn_concat,
    "STRLEN": lambda args: len(ensure_string(args[0])),
    "UCASE": lambda args: ensure_string(args[0]).upper(),
    "LCASE": lambda args: ensure_string(args[0]).lower(),
    "SUBSTR": _fn_substr,
    "STRSTARTS": lambda args: ensure_string(args[0]).startswith(
        ensure_string(args[1])
    ),
    "STRENDS": lambda args: ensure_string(args[0]).endswith(
        ensure_string(args[1])
    ),
    "CONTAINS": lambda args: ensure_string(args[1]) in
        ensure_string(args[0]),
    "STRBEFORE": lambda args: ensure_string(args[0]).split(
        ensure_string(args[1]), 1
    )[0] if ensure_string(args[1]) in ensure_string(args[0]) else "",
    "STRAFTER": lambda args: ensure_string(args[0]).split(
        ensure_string(args[1]), 1
    )[1] if ensure_string(args[1]) in ensure_string(args[0]) else "",
    "ENCODE_FOR_URI": lambda args: __import__("urllib.parse", fromlist=[
        "quote"]).quote(ensure_string(args[0]), safe=""),
    "REPLACE": _fn_replace,
    "REGEX": _fn_regex,
    "STRDT": _fn_strdt,
    "STRLANG": _fn_strlang,
    "SAMETERM": _fn_sameterm,
    "ISIRI": lambda args: isinstance(args[0], URI),
    "ISURI": lambda args: isinstance(args[0], URI),
    "ISBLANK": lambda args: isinstance(args[0], BlankNode),
    "ISLITERAL": lambda args: isinstance(
        args[0], (Literal, bool, int, float, str)
    ),
    "ISNUMERIC": _fn_isnumeric,
    "UUID": lambda args: URI("urn:uuid:%s" % uuid.uuid4()),
    "STRUUID": lambda args: str(uuid.uuid4()),
    "RAND": lambda args: __import__("random").random(),
    "NOW": lambda args: Literal(
        __import__("datetime").datetime.now().isoformat(),
        URI("http://www.w3.org/2001/XMLSchema#dateTime"),
    ),
    "YEAR": lambda args: int(ensure_string(args[0])[0:4]),
    "MONTH": lambda args: int(ensure_string(args[0])[5:7]),
    "DAY": lambda args: int(ensure_string(args[0])[8:10]),
    "HOURS": lambda args: int(ensure_string(args[0])[11:13]),
    "MINUTES": lambda args: int(ensure_string(args[0])[14:16]),
    "SECONDS": lambda args: float(ensure_string(args[0])[17:19]),
    # SciSPARQL array built-ins
    "ADIMS": _fn_adims,
    "AELT": _fn_aelt,
    "ARRAY": _fn_array,
    "ARRAY_SUM": _array_aggregate(array_ops.array_sum, "sum"),
    "ARRAY_AVG": _array_aggregate(array_ops.array_avg, "avg"),
    "ARRAY_MIN": _array_aggregate(array_ops.array_min, "min"),
    "ARRAY_MAX": _array_aggregate(array_ops.array_max, "max"),
    "ARRAY_COUNT": _fn_array_count,
    "ARRAY_MAP": _fn_array_map,
    "ARRAY_CONDENSE": _fn_array_condense,
    "ARRAY_BUILD": _fn_array_build,
    "TRANSPOSE": _fn_transpose,
    "ISARRAY": _fn_isarray,
}
