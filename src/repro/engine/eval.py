"""The plan interpreter: correlated iterator evaluation of logical plans.

Each operator consumes a stream of input solutions and produces a stream
of extended solutions.  Basic graph patterns run index nested-loop joins
over the active graph's hash indexes — the execution strategy of the
main-memory host DBMS (dissertation section 5.4.4) — with triple-pattern
order fixed beforehand by the cost-based optimizer.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, Iterator, List, Optional

from repro.arrays.nma import NumericArray
from repro.arrays.proxy import ArrayProxy
from repro.exceptions import EvaluationError, QueryError
from repro.governor import current_scope
from repro.lifecycle import current_deadline
from repro.rdf.term import BlankNode, Literal, URI, term_key
from repro.sparql import ast
from repro.algebra import logical
from repro.algebra.logical import (
    BGP, Distinct, Extend, Filter, GraphScope, Group, Join, LeftJoin, Minus,
    OrderBy, PathScan, Project, Slice, SubQuery, Union, Unit, ValuesTable,
)
from repro.engine import aggregates as agg
from repro.engine import idjoin
from repro.engine import paths as path_eval
from repro.engine.bindings import Bindings
from repro.engine.expr import Evaluator
from repro.engine.functions import to_term
from repro.engine.udf import FunctionRegistry
from repro import observability as obs

#: Plan-node class name -> operator span label.  Unit is deliberately
#: absent: a one-row constant source earns no span of its own.
_OP_LABELS = {
    "BGP": "bgp",
    "PathScan": "path",
    "ValuesTable": "values",
    "Join": "join",
    "LeftJoin": "leftjoin",
    "Minus": "minus",
    "Union": "union",
    "Filter": "filter",
    "Extend": "extend",
    "GraphScope": "graph",
    "Group": "aggregate",
    "Project": "project",
    "Distinct": "distinct",
    "OrderBy": "orderby",
    "TopK": "topk",
    "Slice": "slice",
    "SubQuery": "subquery",
}


class QueryEngine:
    """Evaluates logical plans against a dataset.

    One engine may be reused across queries; it carries the function
    registry (UDFs, foreign functions) and caches translated views.
    """

    def __init__(self, dataset, functions=None):
        self.dataset = dataset
        self.functions = functions or FunctionRegistry()
        self.evaluator = Evaluator(self)
        self._exists_cache: Dict[int, object] = {}
        self._view_cache: Dict[int, object] = {}

    # -- public API -------------------------------------------------------------

    def run(self, plan, graph=None, initial=None):
        """Evaluate a plan; yields Bindings.

        The ambient request deadline (when one is installed) is polled
        once per produced solution, so a query generating an unbounded
        solution stream is cancellable between results.
        """
        graph = graph if graph is not None else self.dataset.default_graph
        inputs = [initial if initial is not None else Bindings.EMPTY]
        deadline = current_deadline()
        for solution in self._eval(plan, iter(inputs), graph):
            if deadline is not None:
                deadline.check()
            yield solution

    # -- dispatcher --------------------------------------------------------------

    def _eval(self, node, inputs, graph):
        type_name = type(node).__name__
        method = getattr(self, "_eval_" + type_name, None)
        if method is None:
            raise QueryError("cannot evaluate plan node %r" % (node,))
        label = _OP_LABELS.get(type_name)
        if label is None or obs.current_trace() is None:
            return method(node, inputs, graph)
        return self._eval_traced(node, label, method, inputs, graph)

    def _eval_traced(self, node, label, method, inputs, graph):
        """Evaluate one operator under its trace span.

        Each plan node owns exactly one span per trace (re-evaluations —
        an OPTIONAL's right side runs once per left row — fold into it
        via ``calls``).  Timing is *inclusive* per pulled row, EXPLAIN
        ANALYZE style: the span is also installed as the thread's
        ambient span for the duration of each ``next()``, so storage
        spans triggered by this operator nest beneath it.  Only the
        query thread mutates these counters, so they stay lock-free.
        """
        trace = obs.current_trace()
        span_ = trace.operator_span(node, label, obs.current_span())
        span_.calls += 1
        counters = span_.counters

        def counted():
            for item in inputs:
                counters["rows_in"] = counters.get("rows_in", 0) + 1
                yield item

        stream = method(node, counted(), graph)
        state = obs._state
        clock = obs._clock
        advance = stream.__next__
        counters.setdefault("rows_out", 0)
        while True:
            previous = getattr(state, "span", None)
            state.span = span_
            started = clock()
            try:
                item = advance()
            except StopIteration:
                return
            finally:
                span_.elapsed += clock() - started
                state.span = previous
            counters["rows_out"] += 1
            yield item

    # -- leaves -------------------------------------------------------------------

    def _eval_Unit(self, node, inputs, graph):
        yield from inputs

    def _eval_BGP(self, node, inputs, graph):
        patterns = node.patterns
        deadline = current_deadline()
        matcher = idjoin.matcher_for(
            patterns, graph, getattr(node, "keep", None)
        )
        for bindings in inputs:
            if deadline is not None:
                deadline.check()
            if matcher is not None:
                try:
                    # the ID-space join runs eagerly inside solve(), so
                    # a Fallback can only escape before the first row
                    yield from matcher.solve(bindings)
                    continue
                except idjoin.Fallback:
                    pass
            yield from self._match_patterns(
                patterns, 0, bindings, graph, deadline
            )

    def _match_patterns(self, patterns, index, bindings, graph,
                        deadline=None):
        if index == len(patterns):
            yield bindings
            return
        pattern = patterns[index]
        for extended in self._match_one(pattern, bindings, graph, deadline):
            yield from self._match_patterns(
                patterns, index + 1, extended, graph, deadline
            )

    def _match_one(self, pattern, bindings, graph, deadline=None):
        subject = self._resolve(pattern.subject, bindings)
        predicate = self._resolve(pattern.predicate, bindings)
        value = self._resolve_value(pattern.value, bindings)
        for triple in graph.triples(subject, predicate, value):
            # poll inside the innermost scan: a selective pattern over a
            # large graph may iterate long without producing a solution
            if deadline is not None and deadline.expired():
                deadline.check()
            extended = bindings
            consistent = True
            for component, found in (
                (pattern.subject, triple.subject),
                (pattern.predicate, triple.property),
                (pattern.value, triple.value),
            ):
                if isinstance(component, ast.Var):
                    existing = extended.get(component.name)
                    if existing is None:
                        extended = extended.extended(component.name, found)
                    elif existing != found:
                        consistent = False
                        break
            if consistent:
                yield extended

    def _resolve(self, component, bindings):
        if isinstance(component, ast.Var):
            return bindings.get(component.name)
        return component

    def _resolve_value(self, component, bindings):
        if isinstance(component, ast.Var):
            return bindings.get(component.name)
        if isinstance(component, (URI, BlankNode, Literal, NumericArray,
                                  ArrayProxy)):
            return component
        return component

    def _eval_PathScan(self, node, inputs, graph):
        deadline = current_deadline()
        for bindings in inputs:
            subject = self._resolve(node.subject, bindings)
            value = self._resolve_value(node.value, bindings)
            for found_subject, found_value in path_eval.eval_path(
                graph, node.path, subject, value
            ):
                if deadline is not None and deadline.expired():
                    deadline.check()
                extended = bindings
                consistent = True
                for component, found in (
                    (node.subject, found_subject),
                    (node.value, found_value),
                ):
                    if isinstance(component, ast.Var):
                        existing = extended.get(component.name)
                        if existing is None:
                            extended = extended.extended(
                                component.name, found
                            )
                        elif existing != found:
                            consistent = False
                            break
                if consistent:
                    yield extended

    def _eval_ValuesTable(self, node, inputs, graph):
        names = [v.name for v in node.variables]
        for bindings in inputs:
            for row in node.rows:
                extended = bindings
                consistent = True
                for name, term in zip(names, row):
                    if term is None:
                        continue                  # UNDEF
                    existing = extended.get(name)
                    if existing is None:
                        extended = extended.extended(name, term)
                    elif existing != term:
                        consistent = False
                        break
                if consistent:
                    yield extended

    # -- binary operators ----------------------------------------------------------

    def _eval_Join(self, node, inputs, graph):
        left_stream = self._eval(node.left, inputs, graph)
        yield from self._eval(node.right, left_stream, graph)

    def _eval_LeftJoin(self, node, inputs, graph):
        # OPTIONAL can multiply rows; charging each emitted solution
        # bounds join-output amplification under a resource scope
        scope = current_scope()
        left_stream = self._eval(node.left, inputs, graph)
        for solution in left_stream:
            if scope is not None:
                scope.charge_rows(1, "leftjoin")
            matched = False
            for extended in self._eval(
                node.right, iter([solution]), graph
            ):
                if node.condition is not None:
                    try:
                        if not self.evaluator.ebv(node.condition, extended):
                            continue
                    except EvaluationError:
                        continue
                matched = True
                yield extended
            if not matched:
                yield solution

    def _eval_Minus(self, node, inputs, graph):
        scope = current_scope()
        right_solutions = []
        for right in self._eval(node.right, iter([Bindings.EMPTY]), graph):
            if scope is not None:
                scope.charge_rows(1, "minus buffer")
            right_solutions.append(right)
        for solution in self._eval(node.left, inputs, graph):
            excluded = False
            for right in right_solutions:
                if solution.shares_variable(right) and \
                        solution.compatible(right):
                    excluded = True
                    break
            if not excluded:
                yield solution

    def _eval_Union(self, node, inputs, graph):
        for bindings in inputs:
            for branch in node.branches:
                yield from self._eval(branch, iter([bindings]), graph)

    # -- unary operators -------------------------------------------------------------

    def _eval_Filter(self, node, inputs, graph):
        for solution in self._eval(node.input, inputs, graph):
            try:
                if self.evaluator.ebv(node.expr, solution):
                    yield solution
            except EvaluationError:
                continue

    def _eval_Extend(self, node, inputs, graph):
        name = node.var.name
        for solution in self._eval(node.input, inputs, graph):
            value = self.evaluator.evaluate_or_none(node.expr, solution)
            if value is None:
                # SciSPARQL section 4.1.2: an array dereference whose
                # subscript variables are unbound *enumerates* the valid
                # subscripts, binding both the index variables and the
                # dereferenced value
                enumerated = False
                if isinstance(node.expr, ast.ArraySubscript):
                    for extension, element in self._enumerate_subscripts(
                        node.expr, solution
                    ):
                        enumerated = True
                        extension[name] = _storable(element)
                        yield solution.extended_many(extension.items())
                if enumerated:
                    continue
                yield solution            # BIND error leaves var unbound
                continue
            stored = _storable(value)
            existing = solution.get(name)
            if existing is not None:
                if existing == stored:
                    yield solution
                continue                  # incompatible rebind: drop
            yield solution.extended(name, stored)

    def _eval_GraphScope(self, node, inputs, graph):
        if isinstance(node.graph, ast.Var):
            name = node.graph.name
            for bindings in inputs:
                bound = bindings.get(name)
                if bound is not None:
                    target = self.dataset.graph(bound, create=False)
                    if target is not None:
                        yield from self._eval(
                            node.input, iter([bindings]), target
                        )
                    continue
                for graph_name, target in \
                        self.dataset.named_graphs().items():
                    extended = bindings.extended(name, graph_name)
                    yield from self._eval(
                        node.input, iter([extended]), target
                    )
        else:
            target = self.dataset.graph(node.graph, create=False)
            if target is None:
                return
            yield from self._eval(node.input, inputs, graph=target)

    def _eval_Group(self, node, inputs, graph):
        scope = current_scope()
        solutions = []
        for solution in self._eval(node.input, inputs, graph):
            if scope is not None:
                scope.charge_rows(1, "group buffer")
            solutions.append(solution)
        key_exprs = []
        key_names = []
        for expr, alias in node.group_by:
            key_exprs.append(expr)
            if alias is not None:
                key_names.append(alias.name)
            elif isinstance(expr, ast.Var):
                key_names.append(expr.name)
            else:
                key_names.append(None)
        groups: Dict[object, List[Bindings]] = {}
        group_keys: Dict[object, tuple] = {}
        for solution in solutions:
            key_values = []
            for expr in key_exprs:
                value = self.evaluator.evaluate_or_none(expr, solution)
                key_values.append(
                    _storable(value) if value is not None else None
                )
            key = tuple(
                _hashable(value) for value in key_values
            )
            groups.setdefault(key, []).append(solution)
            group_keys[key] = tuple(key_values)
        if not groups and not node.group_by:
            groups[()] = []
            group_keys[()] = ()
        for key, members in groups.items():
            out = {}
            for name, value in zip(key_names, group_keys[key]):
                if name is not None and value is not None:
                    out[name] = value
            for agg_name, aggregate in node.aggregates.items():
                try:
                    out[agg_name] = _storable(
                        self._compute_aggregate(aggregate, members)
                    )
                except EvaluationError:
                    continue             # aggregate error -> unbound
            yield Bindings(out)

    def _compute_aggregate(self, aggregate, members):
        values = []
        if aggregate.expr is None:       # COUNT(*)
            values = [True] * len(members)
        else:
            for solution in members:
                value = self.evaluator.evaluate_or_none(
                    aggregate.expr, solution
                )
                if value is not None:
                    values.append(value)
        return agg.compute(
            aggregate.name, values, aggregate.distinct, aggregate.separator
        )

    def _eval_Project(self, node, inputs, graph):
        names = set(node.variables)
        issuperset = names.issuperset
        for solution in self._eval(node.input, inputs, graph):
            # a solution binding only projected variables passes
            # through untouched (the common SELECT-everything case)
            if issuperset(solution._values):
                yield solution
            else:
                yield solution.project(names)

    def _eval_Distinct(self, node, inputs, graph):
        scope = current_scope()
        seen = set()
        for solution in self._eval(node.input, inputs, graph):
            if solution not in seen:
                # only *retained* solutions grow the hash state; a
                # stream of duplicates costs nothing against the budget
                if scope is not None:
                    scope.charge_rows(1, "distinct hash state")
                seen.add(solution)
                yield solution

    def _sort_key_fn(self, keys):
        """The ORDER BY sort-key callable for one ``keys`` spec."""
        evaluate = self.evaluator.evaluate_or_none

        def sort_key(solution):
            key = []
            for expr, ascending in keys:
                value = evaluate(expr, solution)
                if value is None:
                    component = (0,)
                else:
                    try:
                        component = term_key(to_term(value))
                    except EvaluationError:
                        component = (0,)
                key.append(_Directional(component, ascending))
            return key

        return sort_key

    def _eval_OrderBy(self, node, inputs, graph):
        scope = current_scope()
        solutions = []
        for solution in self._eval(node.input, inputs, graph):
            if scope is not None:
                scope.charge_rows(1, "orderby buffer")
            solutions.append(solution)
        solutions.sort(key=self._sort_key_fn(node.keys))
        yield from solutions

    def _eval_TopK(self, node, inputs, graph):
        # fused OrderBy -> Slice: a bounded heap keeps the limit+offset
        # smallest solutions (nsmallest is stable, matching sort+slice),
        # so a million-row ORDER BY ... LIMIT 10 never fully sorts
        offset = node.offset or 0
        if node.limit <= 0:
            return
        scope = current_scope()
        if scope is not None:
            # the bounded heap holds at most limit+offset solutions
            scope.charge_rows(node.limit + offset, "topk heap")
        top = heapq.nsmallest(
            node.limit + offset,
            self._eval(node.input, inputs, graph),
            key=self._sort_key_fn(node.keys),
        )
        yield from top[offset:]

    def _eval_Slice(self, node, inputs, graph):
        stream = self._eval(node.input, inputs, graph)
        offset = node.offset or 0
        produced = 0
        for index, solution in enumerate(stream):
            if index < offset:
                continue
            if node.limit is not None and produced >= node.limit:
                return
            produced += 1
            yield solution

    def _eval_SubQuery(self, node, inputs, graph):
        scope = current_scope()
        results = []
        for result in self._eval(node.plan, iter([Bindings.EMPTY]), graph):
            if scope is not None:
                scope.charge_rows(1, "subquery buffer")
            results.append(result)
        for bindings in inputs:
            for result in results:
                if bindings.compatible(result):
                    yield bindings.merge(result)

    def _enumerate_subscripts(self, expr, solution):
        """Enumerate valid values of unbound subscript variables.

        For ``?a[?i, 2]`` with ``?i`` unbound, yields one
        ({'i': Literal(k)}, element) pair per valid 1-based index k.
        Yields nothing when the base is unbound, not an array, or the
        subscripts contain no plain unbound variables.
        """
        import itertools
        base = self.evaluator.evaluate_or_none(expr.base, solution)
        if isinstance(base, ArrayProxy):
            base = base.resolve()
        if not isinstance(base, NumericArray):
            return
        free = []
        for position, sub in enumerate(expr.subscripts):
            if isinstance(sub, ast.Var) and solution.get(sub.name) is None:
                if position >= base.ndim:
                    return
                free.append((position, sub.name))
        if not free:
            return
        names = []
        ranges = []
        seen = set()
        for position, name in free:
            if name in seen:
                continue
            seen.add(name)
            names.append(name)
            ranges.append(range(1, base.shape[position] + 1))
        for combo in itertools.product(*ranges):
            extension = {
                name: Literal(index) for name, index in zip(names, combo)
            }
            extended = solution.extended_many(extension.items())
            value = self.evaluator.evaluate_or_none(expr, extended)
            if value is not None:
                yield dict(extension), value

    # -- correlated helpers for the expression evaluator ----------------------------

    def exists(self, pattern, bindings):
        """EXISTS {...}: correlated evaluation with the current solution."""
        from repro.algebra.translator import Translator
        cached = self._exists_cache.get(id(pattern))
        if cached is None:
            cached = Translator().translate_pattern(pattern)
            self._exists_cache[id(pattern)] = cached
        for _ in self._eval(
            cached, iter([bindings]), self.dataset.default_graph
        ):
            return True
        return False

    def call_view(self, function, args):
        """Apply a parameterized view (query-bodied UDF).

        Parameters are pre-bound; following DAPLEX semantics the result is
        the bag of values of the (single) projected variable, returned as
        a Python list — or the single value when the bag has exactly one
        element.
        """
        from repro.algebra.translator import Translator
        cached = self._view_cache.get(id(function))
        if cached is None:
            plan, names = Translator().translate_select(function.body)
            cached = (plan, names)
            self._view_cache[id(function)] = cached
        plan, names = cached
        initial = Bindings({
            param.name: _storable(value)
            for param, value in zip(function.params, args)
        })
        results = list(
            self._eval(plan, iter([initial]), self.dataset.default_graph)
        )
        if len(names) == 1:
            values = [
                solution.get(names[0]) for solution in results
                if solution.get(names[0]) is not None
            ]
            from repro.engine.functions import runtime
            values = [runtime(value) for value in values]
            if len(values) == 1:
                return values[0]
            return values
        return [solution.as_dict() for solution in results]


class _Directional:
    """Sort-key wrapper flipping comparisons for DESC keys."""

    __slots__ = ("key", "ascending")

    def __init__(self, key, ascending):
        self.key = key
        self.ascending = ascending

    def __lt__(self, other):
        if self.ascending:
            return self.key < other.key
        return other.key < self.key

    def __eq__(self, other):
        return self.key == other.key


def _storable(value):
    """Convert a runtime value into the canonical binding representation
    (terms for scalars; arrays, proxies, and callables pass through)."""
    if isinstance(value, (URI, BlankNode, Literal, NumericArray,
                          ArrayProxy)):
        return value
    if isinstance(value, (bool, int, float, str)):
        return Literal(value)
    return value


def _hashable(value):
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)
