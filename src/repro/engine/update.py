"""SPARQL Update execution (INSERT/DELETE DATA, DELETE/INSERT WHERE).

Updates run against the dataset held by an SSDM instance; WHERE clauses go
through the same translate → rewrite → optimize → evaluate pipeline as
queries, and all deletions/insertions are collected before being applied
(the standard snapshot semantics of SPARQL Update).
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import List

from repro.arrays.proxy import ArrayProxy
from repro.exceptions import QueryError
from repro.rdf.term import BlankNode, Literal, URI
from repro.sparql import ast
from repro.algebra.translator import Translator
from repro.algebra.rewriter import rewrite
from repro.algebra.optimizer import optimize
from repro.engine.bindings import Bindings
from repro.engine.eval import _storable


def execute_update(engine, dataset, update, store_array=None, journal=None):
    """Execute one update AST; returns the number of triples affected.

    ``store_array`` is an optional callable mapping a resident array to
    its stored representation (SSDM passes its back-end hook so inserted
    arrays land in external storage).

    ``journal`` is an optional
    :class:`~repro.storage.durability.DatasetJournal`.  The concrete
    delta of the update — the triples actually inserted and deleted,
    with array values already externalized so proxies carry their final
    store ids — is appended (and fsync'd) *before* the dataset mutates.
    A crash before the append loses the whole update; a crash after it
    replays the whole update: never half of one.  Array chunks are
    shipped to the back-end before the append, so the worst crash
    outcome is an orphaned (unreferenced) array, which ``verify()``
    surfaces — never a journal record pointing at missing chunks.
    """
    if isinstance(update, ast.InsertData):
        graph = dataset.graph(update.graph)
        insertions = [
            (s, p, store_array(v) if store_array is not None else v)
            for s, p, v in _instantiate_all(update.triples, Bindings.EMPTY)
        ]
        seq = None
        if journal is not None:
            seq = journal.log_update(
                "insert", update.graph, insert=insertions,
                dictionary=_dictionary(dataset),
            )
        with _writing(dataset, seq):
            for triple in insertions:
                graph.add(*triple)
        return len(insertions)
    if isinstance(update, ast.DeleteData):
        graph = dataset.graph(update.graph)
        deletions = _instantiate_all(update.triples, Bindings.EMPTY)
        seq = None
        if journal is not None:
            seq = journal.log_update(
                "delete", update.graph, delete=deletions
            )
        count = 0
        with _writing(dataset, seq):
            for triple in deletions:
                if graph.remove(triple[0], triple[1], triple[2]):
                    _invalidate_array(triple[2])
                    count += 1
        return count
    if isinstance(update, ast.Modify):
        graph = dataset.graph(update.graph)
        plan, _ = _translate_where(update.where)
        plan = rewrite(plan)
        plan = optimize(plan, graph)
        solutions = list(engine.run(plan, graph=graph))
        deletions = []
        insertions = []
        for solution in solutions:
            deletions.extend(
                _instantiate_all(update.delete_template, solution,
                                 skip_unbound=True)
            )
            insertions.extend(
                (s, p, store_array(v) if store_array is not None else v)
                for s, p, v in _instantiate_all(
                    update.insert_template, solution, skip_unbound=True
                )
            )
        seq = None
        if journal is not None:
            seq = journal.log_update(
                "modify", update.graph,
                insert=insertions, delete=deletions,
                dictionary=_dictionary(dataset),
            )
        count = 0
        with _writing(dataset, seq):
            for triple in deletions:
                if graph.remove(*triple):
                    _invalidate_array(triple[2])
                    count += 1
            for triple in insertions:
                graph.add(*triple)
                count += 1
        return count
    if isinstance(update, ast.ClearGraph):
        if update.graph == "ALL":
            seq = None
            if journal is not None:
                seq = journal.log_update("clear", "ALL")
            count = len(dataset)
            with _writing(dataset, seq):
                for graph in [dataset.default_graph] + list(
                    dataset.named_graphs().values()
                ):
                    _invalidate_graph_arrays(graph)
                    graph.clear()
            return count
        graph = dataset.graph(update.graph, create=False)
        if graph is None:
            return 0
        seq = None
        if journal is not None:
            seq = journal.log_update("clear", update.graph)
        count = len(graph)
        with _writing(dataset, seq):
            _invalidate_graph_arrays(graph)
            graph.clear()
        return count
    raise QueryError("unsupported update %r" % (update,))


def _writing(dataset, seq):
    """The dataset's write-record scope: marks the mutation in flight
    and publishes an MVCC version stamped with the WAL ``seq`` on exit
    (datasets without MVCC support are a no-op)."""
    writing = getattr(dataset, "writing", None)
    if writing is None:
        return nullcontext()
    return writing(seq)


def _dictionary(dataset):
    """The dataset's term dictionary for WAL term→id records, if any."""
    return getattr(dataset, "term_dictionary", None)


def _invalidate_array(value):
    """Drop buffer-pool entries of a deleted array value.

    Deleting the triple severs the last reference SSDM tracks; stale
    pool entries under a recycled array id must never be served.
    """
    if isinstance(value, ArrayProxy):
        invalidate = getattr(value.store, "invalidate_cached", None)
        if invalidate is not None:
            invalidate(value.array_id)


def _invalidate_graph_arrays(graph):
    """Invalidate pooled chunks of every array value in a graph."""
    for triple in list(graph.triples()):
        _invalidate_array(triple.value)


def _translate_where(where):
    translator = Translator()
    return translator.translate_pattern(where), None


def _instantiate_all(templates, bindings, skip_unbound=False):
    """Instantiate template triples against one solution.

    Parser-generated anonymous variables (blank-node shorthand) become
    fresh blank nodes, one per (template, solution) combination.
    """
    fresh = {}
    out = []
    for template in templates:
        triple = _instantiate(template, bindings, fresh)
        if triple is None:
            if skip_unbound:
                continue
            raise QueryError(
                "unbound variable in update template %r" % (template,)
            )
        out.append(triple)
    return out


def _instantiate(template, bindings, fresh):
    components = []
    for index, component in enumerate(
        (template.subject, template.predicate, template.value)
    ):
        if isinstance(component, ast.Var):
            if component.name.startswith("_anon"):
                value = fresh.setdefault(component.name, BlankNode())
            else:
                value = bindings.get(component.name)
                if value is None:
                    return None
            components.append(value)
        else:
            components.append(component)
    subject, predicate, value = components
    if not isinstance(subject, (URI, BlankNode)) or not isinstance(
        predicate, URI
    ):
        return None
    return (subject, predicate, value)
