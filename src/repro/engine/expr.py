"""Expression evaluation with SPARQL error semantics.

The evaluator turns AST expressions into runtime values against a solution
mapping.  Errors raise :class:`EvaluationError`; callers decide whether an
error eliminates a solution (FILTER) or yields an unbound value (BIND and
projected expressions) — dissertation section 3.6.

SciSPARQL array semantics: subscripting an :class:`ArrayProxy` derives a
new proxy (lazy); comparisons and arithmetic resolve what they need.
"""

from __future__ import annotations

from typing import List, Optional

from repro.arrays import ops as array_ops
from repro.arrays.nma import NumericArray, Span
from repro.arrays.proxy import ArrayProxy
from repro.exceptions import (
    ArrayBoundsError, EvaluationError, TypeMismatchError,
    UnknownFunctionError,
)
from repro.rdf.term import BlankNode, Literal, URI, term_key
from repro.sparql import ast
from repro.engine import functions as fn
from repro.engine.bindings import Bindings
from repro.engine.udf import ClosureValue, ForeignFunction, UserFunction

import operator

_ARITHMETIC = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}

_COMPARISON = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    ">": operator.gt,
    "<=": operator.le,
    ">=": operator.ge,
}


class Evaluator:
    """Evaluates expressions given an engine context.

    ``engine`` supplies EXISTS evaluation and user-function application;
    it may be None for standalone expression evaluation (no EXISTS/UDFs).
    """

    def __init__(self, engine=None):
        self.engine = engine

    # -- entry points ---------------------------------------------------------

    def evaluate(self, expr, bindings):
        """Evaluate to a runtime value; raises EvaluationError on failure."""
        method = getattr(
            self, "_eval_" + type(expr).__name__, None
        )
        if method is None:
            raise EvaluationError("cannot evaluate %r" % (expr,))
        return method(expr, bindings)

    def ebv(self, expr, bindings):
        """Effective boolean value of an expression."""
        return fn.effective_boolean_value(self.evaluate(expr, bindings))

    def evaluate_or_none(self, expr, bindings):
        """BIND semantics: an error produces an unbound value."""
        try:
            return self.evaluate(expr, bindings)
        except EvaluationError:
            return None

    # -- node handlers -----------------------------------------------------------

    def _eval_Var(self, expr, bindings):
        value = bindings.get(expr.name)
        if value is None:
            raise EvaluationError("unbound variable ?%s" % expr.name)
        return fn.runtime(value)

    def _eval_TermExpr(self, expr, bindings):
        return fn.runtime(expr.term)

    def _eval_BinaryOp(self, expr, bindings):
        op = expr.op
        if op == "&&":
            # SPARQL three-valued logic: an error on one side may still
            # give a definite false
            left_error = right_error = None
            try:
                left = self.ebv(expr.left, bindings)
            except EvaluationError as error:
                left_error = error
                left = None
            try:
                right = self.ebv(expr.right, bindings)
            except EvaluationError as error:
                right_error = error
                right = None
            if left_error is None and right_error is None:
                return left and right
            if left is False or right is False:
                return False
            raise left_error or right_error
        if op == "||":
            left_error = right_error = None
            try:
                left = self.ebv(expr.left, bindings)
            except EvaluationError as error:
                left_error = error
                left = None
            try:
                right = self.ebv(expr.right, bindings)
            except EvaluationError as error:
                right_error = error
                right = None
            if left_error is None and right_error is None:
                return left or right
            if left is True or right is True:
                return True
            raise left_error or right_error

        left = self.evaluate(expr.left, bindings)
        right = self.evaluate(expr.right, bindings)
        if op in _ARITHMETIC:
            return self._arithmetic(op, left, right)
        if op in _COMPARISON:
            return self._compare(op, left, right)
        raise EvaluationError("unknown operator %r" % op)

    def _arithmetic(self, op, left, right):
        left = self._numeric_operand(left)
        right = self._numeric_operand(right)
        if isinstance(left, NumericArray) or isinstance(right, NumericArray):
            return array_ops.elementwise(_ARITHMETIC[op], left, right)
        try:
            return _ARITHMETIC[op](left, right)
        except ZeroDivisionError:
            raise EvaluationError("division by zero")
        except TypeError:
            raise TypeMismatchError(
                "cannot apply %s to %r and %r" % (op, left, right)
            )

    def _numeric_operand(self, value):
        if isinstance(value, ArrayProxy):
            return value.resolve()
        if isinstance(value, Literal):
            if value.is_numeric():
                return value.value
            raise TypeMismatchError(
                "non-numeric literal in arithmetic: %r" % (value,)
            )
        if isinstance(value, bool):
            raise TypeMismatchError("boolean in arithmetic")
        if isinstance(value, (int, float, NumericArray)):
            return value
        raise TypeMismatchError("non-numeric value %r in arithmetic"
                                % (value,))

    def _compare(self, op, left, right):
        # array equality (section 4.1.6): same shape and elements
        if isinstance(left, (NumericArray, ArrayProxy)) or isinstance(
            right, (NumericArray, ArrayProxy)
        ):
            if op not in ("=", "!="):
                raise TypeMismatchError("arrays only support = and !=")
            left_arr = left.resolve() if isinstance(left, ArrayProxy) \
                else left
            right_arr = right.resolve() if isinstance(right, ArrayProxy) \
                else right
            if not isinstance(left_arr, NumericArray) or not isinstance(
                right_arr, NumericArray
            ):
                return (op == "!=")
            equal = left_arr == right_arr
            return equal if op == "=" else not equal
        if isinstance(left, bool) or isinstance(right, bool):
            if not isinstance(left, bool) or not isinstance(right, bool):
                if op in ("=",):
                    return False
                if op == "!=":
                    return True
                raise TypeMismatchError("comparing boolean to non-boolean")
            return _COMPARISON[op](left, right)
        if isinstance(left, (int, float)) and isinstance(
            right, (int, float)
        ):
            return _COMPARISON[op](left, right)
        if isinstance(left, str) and isinstance(right, str):
            return _COMPARISON[op](left, right)
        if isinstance(left, (URI, BlankNode)) or isinstance(
            right, (URI, BlankNode)
        ):
            if op == "=":
                return left == right
            if op == "!=":
                return left != right
            raise TypeMismatchError("resources only support = and !=")
        if isinstance(left, Literal) or isinstance(right, Literal):
            left_term = fn.to_term(left)
            right_term = fn.to_term(right)
            if op == "=":
                return left_term == right_term
            if op == "!=":
                return left_term != right_term
            return _COMPARISON[op](
                term_key(left_term), term_key(right_term)
            )
        raise TypeMismatchError(
            "cannot compare %r and %r" % (left, right)
        )

    def _eval_UnaryOp(self, expr, bindings):
        if expr.op == "!":
            return not self.ebv(expr.operand, bindings)
        if expr.op == "-":
            value = self._numeric_operand(
                self.evaluate(expr.operand, bindings)
            )
            if isinstance(value, NumericArray):
                return array_ops.elementwise_unary(operator.neg, value)
            return -value
        raise EvaluationError("unknown unary operator %r" % expr.op)

    def _eval_FunctionCall(self, expr, bindings):
        name = expr.name
        if isinstance(name, str):
            return self._builtin(name, expr, bindings)
        # user-defined or foreign function by URI
        if self.engine is None:
            raise UnknownFunctionError("no function context for %s" % name)
        function = self.engine.functions.require(name)
        args = [self._argument(a, bindings) for a in expr.args]
        return self._apply_function(function, args, bindings)

    def _apply_function(self, function, args, bindings):
        if isinstance(function, ForeignFunction):
            try:
                return function(*args)
            except EvaluationError:
                raise
            except Exception as error:
                raise EvaluationError(
                    "foreign function %s failed: %s" % (function.name, error)
                )
        if isinstance(function, UserFunction):
            if len(args) != function.arity():
                raise EvaluationError(
                    "function %s expects %d arguments, got %d"
                    % (function.name, function.arity(), len(args))
                )
            if function.is_view:
                return self.engine.call_view(function, args)
            call_bindings = Bindings({
                param.name: fn.to_term(value) if not callable(value)
                else value
                for param, value in zip(function.params, args)
            })
            try:
                return self.evaluate(function.body, call_bindings)
            except RecursionError:
                raise EvaluationError(
                    "runaway recursion in function %s" % function.name
                )
        if callable(function):
            return function(*args)
        raise EvaluationError("%r is not callable" % (function,))

    def _argument(self, expr, bindings):
        """Evaluate a call argument; closures become callable values and
        function names in argument position become function references."""
        if isinstance(expr, ast.Closure):
            return ClosureValue(expr.params, expr.body, bindings, self)
        if isinstance(expr, ast.TermExpr) and isinstance(expr.term, URI):
            if self.engine is not None and expr.term in \
                    self.engine.functions:
                function = self.engine.functions.require(expr.term)
                evaluator = self

                def as_callable(*args, _function=function):
                    return evaluator._apply_function(
                        _function, list(args), bindings
                    )
                if isinstance(function, ForeignFunction):
                    as_callable.numpy_op = getattr(
                        function.fn, "numpy_op", None
                    )
                return as_callable
        return self.evaluate(expr, bindings)

    def _builtin(self, name, expr, bindings):
        # special forms first
        if name == "BOUND":
            arg = expr.args[0]
            if not isinstance(arg, ast.Var):
                raise EvaluationError("BOUND expects a variable")
            return bindings.get(arg.name) is not None
        if name == "IF":
            condition = self.ebv(expr.args[0], bindings)
            chosen = expr.args[1] if condition else expr.args[2]
            return self.evaluate(chosen, bindings)
        if name == "COALESCE":
            for arg in expr.args:
                try:
                    return self.evaluate(arg, bindings)
                except EvaluationError:
                    continue
            raise EvaluationError("COALESCE: all arguments errored")
        implementation = fn.BUILTINS.get(name)
        if implementation is None:
            raise UnknownFunctionError("unknown built-in %s" % name)
        args = [self._argument(a, bindings) for a in expr.args]
        try:
            return implementation(args)
        except EvaluationError:
            raise
        except (IndexError, ValueError, ArithmeticError) as error:
            raise EvaluationError("%s: %s" % (name, error))

    def _eval_ArraySubscript(self, expr, bindings):
        base = self.evaluate(expr.base, bindings)
        if not isinstance(base, (NumericArray, ArrayProxy)):
            raise TypeMismatchError(
                "subscript applied to non-array %r" % (base,)
            )
        subscripts = []
        for sub in expr.subscripts:
            if isinstance(sub, ast.RangeSubscript):
                subscripts.append(self._span(sub, bindings))
            else:
                index = int(fn.ensure_number(
                    self.evaluate(sub, bindings)
                ))
                subscripts.append(self._from_one_based(index))
        result = base.subscript(subscripts)
        if isinstance(result, NumericArray) and result.ndim == 0:
            return result.to_numpy().item()
        if isinstance(result, ArrayProxy) and result.ndim == 0:
            # a fully-subscripted proxy is a single element: resolve now
            return result.resolve()
        return result

    @staticmethod
    def _from_one_based(index):
        if index < 1:
            raise ArrayBoundsError(
                "array subscripts are 1-based, got %d" % index
            )
        return index - 1

    def _span(self, sub, bindings):
        """Convert a 1-based inclusive lo:stride:hi to an internal Span."""
        lo = None
        if sub.lo is not None:
            lo = self._from_one_based(int(fn.ensure_number(
                self.evaluate(sub.lo, bindings)
            )))
        hi = None
        if sub.hi is not None:
            hi = int(fn.ensure_number(self.evaluate(sub.hi, bindings)))
            if hi < 1:
                raise ArrayBoundsError("range upper bound below 1")
        stride = 1
        if sub.stride is not None:
            stride = int(fn.ensure_number(
                self.evaluate(sub.stride, bindings)
            ))
            if stride < 1:
                raise ArrayBoundsError("stride must be positive")
        return Span(lo, hi, stride)

    def _eval_Closure(self, expr, bindings):
        return ClosureValue(expr.params, expr.body, bindings, self)

    def _eval_FunctionRef(self, expr, bindings):
        if self.engine is None:
            raise UnknownFunctionError("no function context")
        return self.engine.functions.require(expr.name)

    def _eval_InExpr(self, expr, bindings):
        value = self.evaluate(expr.expr, bindings)
        found = False
        for choice in expr.choices:
            try:
                if self._compare("=", value,
                                 self.evaluate(choice, bindings)):
                    found = True
                    break
            except EvaluationError:
                continue
        return (not found) if expr.negated else found

    def _eval_ExistsExpr(self, expr, bindings):
        if self.engine is None:
            raise EvaluationError("EXISTS requires an engine context")
        exists = self.engine.exists(expr.pattern, bindings)
        return (not exists) if expr.negated else exists

    def _eval_Aggregate(self, expr, bindings):
        raise EvaluationError(
            "aggregate %s outside of grouping context" % expr.name
        )
