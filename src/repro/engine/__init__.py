"""The SciSPARQL execution engine.

An iterator-model interpreter over the logical algebra of
:mod:`repro.algebra.logical`.  Joins are correlated index-nested-loop over
the graph's hash indexes (the execution strategy SSDM inherits from its
host DBMS), expressions follow SPARQL error semantics (an error inside a
FILTER removes the candidate solution), and array expressions stay lazy:
subscripts over an :class:`~repro.arrays.ArrayProxy` derive new proxies,
and only value-demanding operations trigger APR.
"""

from repro.engine.bindings import Bindings
from repro.engine.eval import QueryEngine
from repro.engine.udf import FunctionRegistry, UserFunction, ForeignFunction

__all__ = [
    "Bindings",
    "QueryEngine",
    "FunctionRegistry",
    "UserFunction",
    "ForeignFunction",
]
