"""User-defined, foreign, and closure function values.

Dissertation sections 4.2-4.4:

- :class:`UserFunction` — a SciSPARQL ``DEFINE FUNCTION``: either an
  expression body or a SELECT query acting as a *parameterized view*.
- :class:`ForeignFunction` — a host-language (Python) callable registered
  with optional cost and fanout estimates for the optimizer.
- :class:`ClosureValue` — a lexical closure created by an ``FN(...)``
  expression: it captures the enclosing solution's bindings at evaluation
  time, and may be passed to second-order functions such as ``array_map``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.exceptions import EvaluationError, UnknownFunctionError
from repro.rdf.term import URI


class UserFunction:
    """A function defined in SciSPARQL itself."""

    def __init__(self, name, params, body):
        self.name = name                    # URI
        self.params = list(params)          # [ast.Var]
        self.body = body                    # expression AST or SelectQuery

    @property
    def is_view(self):
        from repro.sparql import ast
        return isinstance(self.body, ast.SelectQuery)

    def arity(self):
        return len(self.params)


class ForeignFunction:
    """A Python callable exposed to queries, with optimizer estimates.

    ``cost`` approximates evaluation cost per call; ``fanout`` the number
    of results (1.0 for scalar functions).  Both default to cheap/scalar.
    """

    def __init__(self, name, fn, cost=1.0, fanout=1.0):
        self.name = name
        self.fn = fn
        self.cost = float(cost)
        self.fanout = float(fanout)

    def __call__(self, *args):
        return self.fn(*args)


class ClosureValue:
    """A callable closing over captured bindings.

    Calling it evaluates the body with parameters bound to the call
    arguments on top of the captured environment.  When the body is a
    single arithmetic operator over the parameters, a vectorised
    ``numpy_op`` shortcut is exposed so array mappers run at numpy speed.
    """

    def __init__(self, params, body, env, evaluator):
        self.params = [p.name for p in params]
        self.body = body
        self.env = env
        self.evaluator = evaluator
        self.numpy_op = self._vectorize()

    def __call__(self, *args):
        if len(args) != len(self.params):
            raise EvaluationError(
                "closure expects %d arguments, got %d"
                % (len(self.params), len(args))
            )
        bindings = self.env.extended_many(zip(self.params, args))
        return self.evaluator.evaluate(self.body, bindings)

    def _vectorize(self):
        """Build a numpy-level equivalent of simple arithmetic bodies."""
        import numpy as np
        from repro.sparql import ast
        from repro.rdf.term import Literal

        ops = {
            "+": np.add, "-": np.subtract,
            "*": np.multiply, "/": np.true_divide,
        }

        def build(expr):
            if isinstance(expr, ast.Var):
                if expr.name in self.params:
                    index = self.params.index(expr.name)
                    return lambda args: args[index]
                captured = self.env.get(expr.name)
                if captured is None:
                    return None
                from repro.engine.functions import ensure_number
                try:
                    value = ensure_number(
                        captured if not hasattr(captured, "value")
                        else captured.value
                    )
                except Exception:
                    return None
                return lambda args: value
            if isinstance(expr, ast.TermExpr) and isinstance(
                expr.term, Literal
            ) and expr.term.is_numeric():
                constant = expr.term.value
                return lambda args: constant
            if isinstance(expr, ast.BinaryOp) and expr.op in ops:
                left = build(expr.left)
                right = build(expr.right)
                if left is None or right is None:
                    return None
                op = ops[expr.op]
                return lambda args: op(left(args), right(args))
            if isinstance(expr, ast.UnaryOp) and expr.op == "-":
                operand = build(expr.operand)
                if operand is None:
                    return None
                return lambda args: np.negative(operand(args))
            return None

        compiled = build(self.body)
        if compiled is None:
            return None

        def numpy_op(*arrays):
            return compiled(list(arrays))

        return numpy_op


class FunctionRegistry:
    """All callable things known to one SSDM instance."""

    def __init__(self):
        self._functions: Dict[str, object] = {}

    @staticmethod
    def _key(name):
        if isinstance(name, URI):
            return name.value
        return str(name)

    def define(self, name, params, body):
        """Register a SciSPARQL DEFINE FUNCTION."""
        function = UserFunction(name, params, body)
        self._functions[self._key(name)] = function
        return function

    def register_foreign(self, name, fn, cost=1.0, fanout=1.0):
        """Register a Python callable as a foreign function."""
        if isinstance(name, str) and "://" not in name:
            name = URI(name)
        foreign = ForeignFunction(name, fn, cost, fanout)
        self._functions[self._key(name)] = foreign
        return foreign

    def lookup(self, name):
        return self._functions.get(self._key(name))

    def require(self, name):
        function = self.lookup(name)
        if function is None:
            raise UnknownFunctionError(
                "undefined function %s" % self._key(name)
            )
        return function

    def __contains__(self, name):
        return self._key(name) in self._functions

    def names(self):
        return sorted(self._functions)
