"""ID-space BGP evaluation: sorted-run scans and merge joins.

The per-row interpreter in :mod:`repro.engine.eval` probes the graph
once per input binding per pattern.  When the active graph stores
dictionary-encoded sorted permutation indexes
(``graph.supports_id_space``), a basic graph pattern can instead be
answered entirely in integer space: each triple pattern resolves to a
contiguous sorted run by binary search, patterns are combined with
vectorized merge/intersection joins over numpy ``int64`` columns, and
IDs are decoded back to term objects only when solutions leave the
pipeline as :class:`~repro.engine.bindings.Bindings`.

The matcher handles every BGP whose components are variables or ground
terms — i.e. all of them, post-translation — but stays *optional*: any
condition it cannot honour (intermediate result growing past
:data:`MAX_ROWS`) raises :class:`Fallback` **before the first solution
is produced**, and the engine reverts to the interpreter for that
input binding.  ``set_enabled(False)`` forces the interpreter globally,
which is how the parity property tests drive both paths.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Tuple

import numpy as np

from repro.engine.bindings import Bindings
from repro.governor import current_scope
from repro.lifecycle import current_deadline
from repro.rdf.graph import _ambient_version
from repro.rdf.term import is_term
from repro.sparql import ast

#: Hard cap on intermediate join width before falling back to the
#: per-row interpreter (which streams instead of materializing).  Under
#: a resource scope the *effective* guard is the query's remaining row
#: budget: a pattern whose output would blow the budget aborts with a
#: typed RESOURCE error before the arrays are allocated — falling back
#: to the interpreter would only grind out the same rows slowly.
MAX_ROWS = 4_000_000

_CONST = 0
_VAR = 1

_ENABLED = True


class _FastPathCounters:
    """Thread-safe solve/fallback counters with a dict-read API.

    Server query threads increment concurrently; a bare dict's
    ``+= 1`` loses updates under contention (read-modify-write races),
    which surfaces exactly when the load harness reads the counters
    mid-run.  Each thread increments its *own* cell (no lock on the
    solve hot path — just a ``threading.local`` attribute lookup);
    readers take the registry lock and sum across cells, so
    ``counters["solve"]`` is an exact total of all finished
    increments.
    """

    __slots__ = ("_names", "_local", "_lock", "_cells")

    def __init__(self, names=("solve", "fallback")):
        self._names = tuple(names)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._cells: List[Dict[str, int]] = []

    def _cell(self):
        cell = getattr(self._local, "cell", None)
        if cell is None:
            cell = {name: 0 for name in self._names}
            with self._lock:
                self._cells.append(cell)
            self._local.cell = cell
        return cell

    def increment(self, name):
        self._cell()[name] += 1

    def __getitem__(self, name):
        if name not in self._names:
            raise KeyError(name)
        with self._lock:
            return sum(cell[name] for cell in self._cells)

    def snapshot(self):
        with self._lock:
            return {
                name: sum(cell[name] for cell in self._cells)
                for name in self._names
            }


#: Fast-path usage counters (tests assert the path actually runs; the
#: load harness reads them from concurrent server threads).
counters = _FastPathCounters()


def set_enabled(flag):
    """Globally enable/disable the fast path (parity tests)."""
    global _ENABLED
    _ENABLED = bool(flag)
    return _ENABLED


class Fallback(Exception):
    """Raised before any solution is emitted: use the interpreter."""


def matcher_for(patterns, graph, keep=None):
    """A compiled :class:`IdBGPMatcher`, or None when unsupported.

    ``keep`` (projection pushdown, see ``logical.BGP.keep``) restricts
    which variables the decode materializes; None decodes all.
    """
    if not _ENABLED or not patterns:
        return None
    if not getattr(graph, "supports_id_space", False):
        return None
    specs = []
    names = set()
    for pattern in patterns:
        spec = []
        for component in (pattern.subject, pattern.predicate,
                          pattern.value):
            if isinstance(component, ast.Var):
                spec.append((_VAR, component.name))
                names.add(component.name)
            elif is_term(component):
                spec.append((_CONST, component))
            else:
                return None
        specs.append(spec)
    return IdBGPMatcher(graph, specs, names, keep)


class IdBGPMatcher:
    """One BGP compiled against one ID-space graph.

    A matcher is built once per ``_eval_BGP`` call and solved once per
    input binding; each solve joins fully in ID space, then decodes.
    """

    __slots__ = ("_graph", "_specs", "_names", "_keep")

    def __init__(self, graph, specs, names, keep=None):
        self._graph = graph
        self._specs = specs
        self._names = names
        self._keep = keep

    def solve(self, binding):
        """Solutions for one input binding.

        The ID-space join runs *eagerly* here — :class:`Fallback`
        escapes from this call, never from the returned iterator — and
        only decoding is lazy.
        """
        counters.increment("solve")
        state = self._join_ids(binding)
        return self._decode(binding, state)

    # -- ID-space join ------------------------------------------------------------

    def _join_ids(self, binding):
        graph = self._graph
        source = _ambient_version(graph)
        if source is None:
            # live read (single writer or embedded use): consolidating
            # here is safe because no snapshot pins the current base
            graph._ensure_flushed()
            source = graph
            encode = graph._dict.try_encode
        else:
            # MVCC read: never consolidate (the graph belongs to the
            # writer) — the frozen version merges its own overlay
            encode = source.try_encode
        fixed = {}
        for name in self._names:
            term = binding.get(name)
            if term is not None:
                tid = encode(term)
                if tid is None:
                    # the bound term occurs in no triple at all
                    return None
                fixed[name] = tid
        scope = current_scope()
        columns: Dict[str, np.ndarray] = {}
        nrows = 1
        for spec in self._specs:
            columns, nrows = self._apply_pattern(
                spec, fixed, columns, nrows, source, encode, scope
            )
            if nrows == 0:
                return None
            if scope is not None:
                scope.charge_rows(nrows, "idjoin")
                scope.charge_bytes(nrows * max(1, len(columns)) * 8,
                                   "idjoin")
        return columns, nrows, source

    def _apply_pattern(self, spec, fixed, columns, nrows, source,
                       encode, scope=None):
        scalars = [None, None, None]
        joins: List[Tuple[int, str]] = []
        free: List[Tuple[int, str]] = []
        free_names = set()
        duplicates: List[Tuple[int, int]] = []
        for position, (kind, payload) in enumerate(spec):
            if kind == _CONST:
                tid = encode(payload)
                if tid is None:
                    return columns, 0
                scalars[position] = tid
            elif payload in fixed:
                scalars[position] = fixed[payload]
            elif payload in columns:
                joins.append((position, payload))
            elif payload in free_names:
                duplicates.append(
                    (next(q for q, n in free if n == payload), position)
                )
            else:
                free.append((position, payload))
                free_names.add(payload)

        run_s, run_p, run_o, leading_free = source._run_arrays(
            scalars[0], scalars[1], scalars[2]
        )
        run = (run_s, run_p, run_o)
        selection = None
        for first, second in duplicates:
            if selection is None:
                selection = np.nonzero(run[first] == run[second])[0]
            else:
                kept = run[first][selection] == run[second][selection]
                selection = selection[kept]

        def run_column(position):
            column = run[position]
            return column if selection is None else column[selection]

        run_length = len(run_s) if selection is None else len(selection)
        if run_length == 0:
            return columns, 0

        if not joins:
            total = nrows * run_length
            if scope is not None:
                scope.check_rows(total, "idjoin cartesian")
            if total > MAX_ROWS:
                counters.increment("fallback")
                raise Fallback()
            if not columns:
                new_columns = {
                    name: np.ascontiguousarray(run_column(position))
                    for position, name in free
                }
                return new_columns, run_length
            left = np.repeat(np.arange(nrows), run_length)
            right = np.tile(np.arange(run_length), nrows)
            new_columns = {
                name: column[left] for name, column in columns.items()
            }
            for position, name in free:
                new_columns[name] = run_column(position)[right]
            return new_columns, total

        # merge join on the first shared variable; further shared
        # variables filter with a vectorized equality pass
        join_position, join_name = joins[0]
        join_column = run_column(join_position)
        if join_position == leading_free and selection is None:
            order = None
            sorted_column = join_column
        else:
            order = np.argsort(join_column, kind="stable")
            sorted_column = join_column[order]
        left_values = columns[join_name]
        lo = np.searchsorted(sorted_column, left_values, "left")
        hi = np.searchsorted(sorted_column, left_values, "right")
        run_counts = hi - lo
        total = int(run_counts.sum())
        if scope is not None:
            scope.check_rows(total, "idjoin merge join")
        if total > MAX_ROWS:
            counters.increment("fallback")
            raise Fallback()
        left = np.repeat(np.arange(nrows), run_counts)
        offsets = np.arange(total) - np.repeat(
            np.cumsum(run_counts) - run_counts, run_counts
        )
        positions = np.repeat(lo, run_counts) + offsets
        right = positions if order is None else order[positions]
        for position, name in joins[1:]:
            mask = columns[name][left] == run_column(position)[right]
            left = left[mask]
            right = right[mask]
        new_columns = {
            name: column[left] for name, column in columns.items()
        }
        for position, name in free:
            new_columns[name] = run_column(position)[right]
        return new_columns, len(left)

    # -- decoding -----------------------------------------------------------------

    def _decode(self, binding, state):
        if state is None:
            return
        columns, nrows, source = state
        if not columns:
            # fully ground relative to the binding: at most one way
            for _ in range(nrows):
                yield binding
            return
        # decode through the same source the join read (a version's
        # dictionary may be older than the graph's after compaction)
        terms = source.term_list()
        keep = self._keep
        names = [
            name for name in columns if keep is None or name in keep
        ]
        if not names:
            for _ in range(nrows):
                yield binding
            return
        decoded = [
            [terms[tid] for tid in columns[name].tolist()]
            for name in names
        ]
        base = binding.as_dict()
        adopt = Bindings.adopt
        deadline = current_deadline()
        if base or deadline is not None:
            row = 0
            for cells in zip(*decoded):
                if deadline is not None and (row & 1023) == 0 and \
                        deadline.expired():
                    deadline.check()
                row += 1
                values = dict(base)
                values.update(zip(names, cells))
                yield adopt(values)
            return
        # hot case: no input binding, no deadline — emit with dict
        # literals (measurably cheaper than dict(zip(...)) per row)
        if len(names) == 1:
            name0, = names
            for value0 in decoded[0]:
                yield adopt({name0: value0})
        elif len(names) == 2:
            name0, name1 = names
            for value0, value1 in zip(*decoded):
                yield adopt({name0: value0, name1: value1})
        elif len(names) == 3:
            name0, name1, name2 = names
            for value0, value1, value2 in zip(*decoded):
                yield adopt(
                    {name0: value0, name1: value1, name2: value2}
                )
        else:
            for cells in zip(*decoded):
                yield adopt(dict(zip(names, cells)))
