"""The array-query mini-benchmark generator (dissertation section 6.3.1).

Generates a population of stored 2-D arrays and a stream of array *access
patterns* over them, covering the best and worst cases of each retrieval
strategy:

==============  ==========================================================
pattern         view produced, and what it stresses
==============  ==========================================================
``element``     one random element — SINGLE's best case, SPD useless
``row``         one full row — contiguous chunk run, SPD's best case
``column``      one full column — perfectly regular stride across chunks
``stride``      every k-th element of a row — regular with gaps
``block``       contiguous rectangular sub-array
``diagonal``    the main diagonal — regular stride, long period
``random``      scattered random elements — SPD's worst case (no runs)
``whole``       the full array — bulk transfer / aggregate delegation
==============  ==========================================================

Patterns are deterministic given the generator seed, so strategy
comparisons see identical workloads.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.arrays.nma import NumericArray, Span
from repro.arrays.proxy import ArrayProxy
from repro.exceptions import SciSparqlError

ACCESS_PATTERNS = (
    "element", "row", "column", "stride", "block", "diagonal",
    "random", "whole",
)


def make_benchmark_store(store, arrays=4, shape=(256, 256), seed=7):
    """Fill an ASEI store with deterministic 2-D float64 arrays.

    Returns the list of whole-array proxies.
    """
    rng = np.random.default_rng(seed)
    proxies = []
    for _ in range(arrays):
        data = rng.standard_normal(shape)
        proxies.append(store.put(NumericArray(data)))
    return proxies


class QueryGenerator:
    """Deterministic stream of array-view 'queries' over stored arrays."""

    def __init__(self, proxies, seed=11, stride=8, block=32,
                 random_points=64):
        if not proxies:
            raise SciSparqlError("query generator needs at least one array")
        self.proxies = list(proxies)
        self.rng = np.random.default_rng(seed)
        self.stride = stride
        self.block = block
        self.random_points = random_points

    def _pick(self):
        return self.proxies[int(self.rng.integers(len(self.proxies)))]

    def views(self, pattern, count):
        """Yield ``count`` proxy views (or lists of single-element views
        for 'element'/'random') under one access pattern."""
        for _ in range(count):
            yield self.view(pattern)

    def view(self, pattern):
        """One access under a pattern.

        Returns either a single :class:`ArrayProxy` view, or — for the
        point patterns — a list of 0-d element views forming one logical
        query (a bag of proxies to resolve together, section 6.2.4).
        """
        proxy = self._pick()
        rows, cols = proxy.shape
        if pattern == "element":
            r = int(self.rng.integers(rows))
            c = int(self.rng.integers(cols))
            return [proxy.subscript([r, c])]
        if pattern == "row":
            r = int(self.rng.integers(rows))
            return proxy.subscript([r])
        if pattern == "column":
            c = int(self.rng.integers(cols))
            return proxy.subscript([None, c])
        if pattern == "stride":
            r = int(self.rng.integers(rows))
            return proxy.subscript(
                [r, Span(0, cols, self.stride)]
            )
        if pattern == "block":
            size = min(self.block, rows, cols)
            r = int(self.rng.integers(rows - size + 1))
            c = int(self.rng.integers(cols - size + 1))
            return proxy.subscript(
                [Span(r, r + size), Span(c, c + size)]
            )
        if pattern == "diagonal":
            # model the diagonal as single-element views sharing one query
            size = min(rows, cols)
            return [
                proxy.subscript([i, i]) for i in range(size)
            ]
        if pattern == "random":
            points = []
            for _ in range(self.random_points):
                r = int(self.rng.integers(rows))
                c = int(self.rng.integers(cols))
                points.append(proxy.subscript([r, c]))
            return points
        if pattern == "whole":
            return proxy
        raise SciSparqlError("unknown access pattern %r" % (pattern,))


def run_pattern(resolver, generator, pattern, count):
    """Resolve ``count`` accesses of one pattern; returns elements read.

    The store's traffic counters (``store.stats``) accumulate across the
    run, so callers snapshot them around this function to compare
    strategies.
    """
    elements = 0
    for view in generator.views(pattern, count):
        if isinstance(view, list):
            results = resolver.resolve(view)
            elements += sum(
                r.element_count if isinstance(r, NumericArray) else 1
                for r in results
            )
        else:
            result = resolver.resolve([view])[0]
            elements += result.element_count
    return elements
