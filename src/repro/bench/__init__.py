"""Benchmark support code: the array-query mini-benchmark generator
(dissertation section 6.3) and measurement helpers shared by the
``benchmarks/`` harness."""

from repro.bench.querygen import (
    ACCESS_PATTERNS,
    QueryGenerator,
    make_benchmark_store,
)

__all__ = ["ACCESS_PATTERNS", "QueryGenerator", "make_benchmark_store"]
