"""Request lifecycle: deadlines and cooperative cancellation.

The server mints one :class:`Deadline` per request (default budget plus a
per-request ``timeout_ms`` override) and installs it as the *ambient*
deadline of the handler thread.  Long-running loops down the stack — the
engine's solution iteration, APR's fetch pipeline, ASEI batched reads —
poll the ambient deadline at their loop boundaries, so a timed-out query
stops consuming CPU, releases its buffer-pool pins, and surfaces a typed
:class:`~repro.exceptions.RequestTimeoutError` instead of holding a
handler thread (and the server's read lock) forever.

Cancellation is cooperative: nothing is interrupted preemptively, which
keeps invariants simple — every ``finally`` block on the unwind path runs
(pins are unpinned, in-flight claims failed, locks released).  The cost is
that a loop which never polls cannot be cancelled; the polling points
cover every loop that does storage I/O or unbounded solution generation.

Threads fetching on behalf of a request (the APR prefetch pool) do not
inherit thread-local state, so :meth:`ArrayStore.get_chunks_async
<repro.storage.asei.ArrayStore>` captures the ambient deadline at submit
time and re-installs it inside the worker via :func:`deadline_scope`.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Optional

from repro.exceptions import RequestCancelledError, RequestTimeoutError
from repro import observability as obs

#: Granularity of cooperative sleeps: how quickly a sleeping worker
#: notices an expired deadline or a cancel() from another thread.
_SLEEP_SLICE_SECONDS = 0.02


class Deadline:
    """A cancellation token with an optional wall-clock budget.

    ``timeout_seconds=None`` makes an unbounded token that can still be
    cancelled explicitly.  All methods are safe to call from any thread;
    ``cancel()`` is typically called by a thread other than the one
    running the request.

    >>> Deadline(60).expired()
    False
    >>> d = Deadline(None); d.cancel(); d.expired()
    True
    """

    __slots__ = ("timeout_seconds", "_expires_at", "_cancelled")

    def __init__(self, timeout_seconds=None):
        self.timeout_seconds = (
            None if timeout_seconds is None else float(timeout_seconds)
        )
        self._expires_at = (
            None if self.timeout_seconds is None
            else time.monotonic() + self.timeout_seconds
        )
        self._cancelled = False

    @classmethod
    def after_ms(cls, timeout_ms):
        """A deadline ``timeout_ms`` milliseconds from now (None = none)."""
        if timeout_ms is None:
            return cls(None)
        return cls(float(timeout_ms) / 1000.0)

    def cancel(self):
        """Trip the token; every subsequent check() raises."""
        self._cancelled = True

    @property
    def cancelled(self):
        return self._cancelled

    def expired(self):
        """True once the budget has elapsed or cancel() was called."""
        return self._cancelled or (
            self._expires_at is not None
            and time.monotonic() >= self._expires_at
        )

    def remaining(self):
        """Seconds left (never negative), or None when unbounded."""
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - time.monotonic())

    def check(self):
        """Raise the matching lifecycle error when the token tripped.

        The outcome also lands on the active query trace as a
        ``cancelled`` / ``deadline_expired`` event, so a slow-query-log
        entry shows *where* in the span tree the request died.
        """
        if self._cancelled:
            obs.event("cancelled")
            raise RequestCancelledError("request cancelled")
        if (
            self._expires_at is not None
            and time.monotonic() >= self._expires_at
        ):
            obs.event(
                "deadline_expired",
                budget_ms=round(self.timeout_seconds * 1000.0, 3),
            )
            raise RequestTimeoutError(
                "request exceeded its %.0f ms deadline"
                % (self.timeout_seconds * 1000.0)
            )

    def sleep(self, seconds):
        """Sleep cooperatively: wake and raise when the token trips.

        Used by the fault-injection latency knob so that injected
        back-end latency never outlives the request's budget.
        """
        end = time.monotonic() + float(seconds)
        while True:
            self.check()
            left = end - time.monotonic()
            if left <= 0:
                return
            time.sleep(min(left, _SLEEP_SLICE_SECONDS))


# -- the ambient (per-thread) deadline ----------------------------------------------

_ambient = threading.local()


def current_deadline() -> Optional[Deadline]:
    """The deadline governing the current thread's request, or None."""
    return getattr(_ambient, "deadline", None)


@contextmanager
def deadline_scope(deadline):
    """Install ``deadline`` as the thread's ambient deadline.

    Scopes nest; the previous ambient deadline is restored on exit.
    Passing None temporarily clears the ambient deadline (used for
    background work that must not inherit a request's budget).
    """
    previous = getattr(_ambient, "deadline", None)
    _ambient.deadline = deadline
    try:
        yield deadline
    finally:
        _ambient.deadline = previous


def check_deadline():
    """Poll the ambient deadline; no-op when none is installed."""
    deadline = getattr(_ambient, "deadline", None)
    if deadline is not None:
        deadline.check()


def run_with_deadline(deadline, fn, *args):
    """Call ``fn(*args)`` with ``deadline`` installed as ambient.

    The bridge for handing a request's deadline across a thread-pool
    boundary: capture ``current_deadline()`` at submit time, run the
    worker through this wrapper.
    """
    if deadline is None:
        return fn(*args)
    with deadline_scope(deadline):
        return fn(*args)
