"""Normalization and rewriting of logical plans.

The SSDM query processor normalizes the translated calculus before
optimization (section 5.4.5): conjunctive filter conditions are split so
each conjunct can be placed independently, filters are pushed down towards
the patterns that bind their variables, and constant subexpressions fold.
"""

from __future__ import annotations

from repro.rdf.term import Literal
from repro.sparql import ast
from repro.algebra import logical
from repro.algebra.logical import (
    BGP, Distinct, Extend, Filter, GraphScope, Group, Join, LeftJoin, Minus,
    OrderBy, PathScan, Project, Slice, SubQuery, Union, Unit, ValuesTable,
    expression_variables, pattern_variables,
)


def rewrite(plan):
    """Apply all rewrites until fixpoint (bounded by tree size)."""
    plan = _map_expressions(plan, fold_constants)
    plan = _split_filters(plan)
    changed = True
    guard = 0
    while changed and guard < 100:
        plan, changed = _push_filters(plan)
        guard += 1
    return plan


# ---------------------------------------------------------------------------
# constant folding
# ---------------------------------------------------------------------------

_FOLDABLE_BINARY = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


def fold_constants(expr):
    """Evaluate numeric-literal subtrees at rewrite time."""
    if isinstance(expr, ast.BinaryOp):
        left = fold_constants(expr.left)
        right = fold_constants(expr.right)
        if (
            expr.op in _FOLDABLE_BINARY
            and _is_number(left) and _is_number(right)
        ):
            try:
                value = _FOLDABLE_BINARY[expr.op](
                    left.term.value, right.term.value
                )
            except ZeroDivisionError:
                return ast.BinaryOp(expr.op, left, right)
            return ast.TermExpr(Literal(value))
        return ast.BinaryOp(expr.op, left, right)
    if isinstance(expr, ast.UnaryOp):
        operand = fold_constants(expr.operand)
        if expr.op == "-" and _is_number(operand):
            return ast.TermExpr(Literal(-operand.term.value))
        return ast.UnaryOp(expr.op, operand)
    if isinstance(expr, ast.FunctionCall):
        return ast.FunctionCall(
            expr.name, [fold_constants(a) for a in expr.args]
        )
    if isinstance(expr, ast.ArraySubscript):
        subs = []
        for sub in expr.subscripts:
            if isinstance(sub, ast.RangeSubscript):
                subs.append(ast.RangeSubscript(
                    *(None if p is None else fold_constants(p)
                      for p in (sub.lo, sub.stride, sub.hi))
                ))
            else:
                subs.append(fold_constants(sub))
        return ast.ArraySubscript(fold_constants(expr.base), subs)
    return expr


def _is_number(expr):
    return (
        isinstance(expr, ast.TermExpr)
        and isinstance(expr.term, Literal)
        and expr.term.is_numeric()
    )


# ---------------------------------------------------------------------------
# filter splitting and pushdown
# ---------------------------------------------------------------------------

def split_conjunction(expr):
    """Flatten nested ``&&`` into a list of conjuncts."""
    if isinstance(expr, ast.BinaryOp) and expr.op == "&&":
        return split_conjunction(expr.left) + split_conjunction(expr.right)
    return [expr]


def _split_filters(node):
    node = _rebuild(node, _split_filters)
    if isinstance(node, Filter):
        conjuncts = split_conjunction(node.expr)
        if len(conjuncts) > 1:
            inner = node.input
            for conjunct in conjuncts:
                inner = Filter(inner, conjunct)
            return inner
    return node


def _push_filters(node):
    """One pass of filter pushdown; returns (node, changed)."""
    changed = False

    def visit(node):
        nonlocal changed
        node = _rebuild(node, visit)
        if not isinstance(node, Filter):
            return node
        target = node.input
        needed = expression_variables(node.expr)
        if isinstance(target, Filter):
            # canonical order: keep pushing through stacked filters only
            # when it enables a deeper push (avoid infinite swaps)
            pushed = _try_push(Filter(target.input, node.expr))
            if pushed is not None:
                changed = True
                return Filter(pushed, target.expr)
            return node
        pushed = _try_push(node)
        if pushed is not None:
            changed = True
            return pushed
        return node

    def _try_push(filter_node):
        target = filter_node.input
        needed = expression_variables(filter_node.expr)
        if isinstance(target, Join):
            left_vars = pattern_variables(target.left)
            right_vars = pattern_variables(target.right)
            if needed <= left_vars:
                return Join(
                    Filter(target.left, filter_node.expr), target.right
                )
            if needed <= right_vars:
                return Join(
                    target.left, Filter(target.right, filter_node.expr)
                )
            return None
        if isinstance(target, LeftJoin):
            left_vars = pattern_variables(target.left)
            if needed <= left_vars:
                return LeftJoin(
                    Filter(target.left, filter_node.expr),
                    target.right, target.condition,
                )
            return None
        if isinstance(target, Union):
            branches = [
                Filter(branch, filter_node.expr)
                for branch in target.branches
            ]
            return Union(branches)
        if isinstance(target, GraphScope):
            inner_vars = pattern_variables(target.input)
            if needed <= inner_vars:
                return GraphScope(
                    target.graph, Filter(target.input, filter_node.expr)
                )
            return None
        return None

    return visit(node), changed


# ---------------------------------------------------------------------------
# tree utilities
# ---------------------------------------------------------------------------

def _rebuild(node, visit):
    """Rebuild a node with children mapped through ``visit``."""
    if isinstance(node, (BGP, PathScan, ValuesTable, Unit, SubQuery)):
        return node
    if isinstance(node, Join):
        return Join(visit(node.left), visit(node.right))
    if isinstance(node, LeftJoin):
        return LeftJoin(visit(node.left), visit(node.right), node.condition)
    if isinstance(node, Minus):
        return Minus(visit(node.left), visit(node.right))
    if isinstance(node, Union):
        return Union([visit(branch) for branch in node.branches])
    if isinstance(node, Filter):
        return Filter(visit(node.input), node.expr)
    if isinstance(node, Extend):
        return Extend(visit(node.input), node.var, node.expr)
    if isinstance(node, GraphScope):
        return GraphScope(node.graph, visit(node.input))
    if isinstance(node, Group):
        return Group(visit(node.input), node.group_by, node.aggregates)
    if isinstance(node, Project):
        return Project(visit(node.input), node.variables)
    if isinstance(node, Distinct):
        return Distinct(visit(node.input))
    if isinstance(node, OrderBy):
        return OrderBy(visit(node.input), node.keys)
    if isinstance(node, Slice):
        return Slice(visit(node.input), node.limit, node.offset)
    raise TypeError("unknown plan node %r" % (node,))


def _map_expressions(node, mapper):
    """Apply an expression mapper to every expression in the plan."""
    if isinstance(node, Filter):
        return Filter(_map_expressions(node.input, mapper),
                      mapper(node.expr))
    if isinstance(node, Extend):
        return Extend(_map_expressions(node.input, mapper),
                      node.var, mapper(node.expr))
    if isinstance(node, LeftJoin):
        condition = mapper(node.condition) \
            if node.condition is not None else None
        return LeftJoin(
            _map_expressions(node.left, mapper),
            _map_expressions(node.right, mapper),
            condition,
        )
    if isinstance(node, OrderBy):
        return OrderBy(
            _map_expressions(node.input, mapper),
            [(mapper(expr), asc) for expr, asc in node.keys],
        )
    if isinstance(node, (BGP, PathScan, ValuesTable, Unit)):
        return node
    if isinstance(node, SubQuery):
        return SubQuery(_map_expressions(node.plan, mapper), node.variables)
    return _rebuild(node, lambda child: _map_expressions(child, mapper))
