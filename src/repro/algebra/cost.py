"""Cost model for triple-pattern ordering.

Mirrors the role of Amos II's cost-based optimizer in SSDM (section 5.4.5):
every triple-pattern predicate gets a cardinality estimate *as a function
of which of its variables are already bound*, derived from the graph
statistics (triple counts, per-property counts, distinct subject/value
counts).  The optimizer greedily picks the cheapest next pattern.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.sparql import ast
from repro.rdf.graph import Graph


class CostModel:
    """Cardinality estimation over one graph's statistics."""

    #: Penalty multiplier for a pattern with an unbound predicate —
    #: it cannot use the POS index effectively.
    UNBOUND_PREDICATE_FACTOR = 2.0

    def __init__(self, graph):
        self.graph = graph
        self.stats = graph.statistics

    def pattern_cardinality(self, pattern, bound):
        """Estimated solutions of a triple pattern given bound variables.

        ``bound`` is the set of variable names already bound when this
        pattern would execute.

        Components that are ground *constants* are priced with the exact
        run length read off the graph's sorted permutation indexes
        (``graph.pattern_count``, an O(log n) binary search) — no
        estimation error at all.  Only components bound through a
        *variable* fall back to averaged fanout/fanin statistics, since
        the constant they will hold is unknown at planning time.
        """
        subject_bound = self._is_bound(pattern.subject, bound)
        value_bound = self._is_bound(pattern.value, bound)

        total = max(self.stats.triple_count, 1)
        prop = None if isinstance(pattern.predicate, ast.Var) \
            else pattern.predicate
        subject = None if isinstance(pattern.subject, ast.Var) \
            else pattern.subject
        value = None if isinstance(pattern.value, ast.Var) \
            else pattern.value
        exact = getattr(self.graph, "pattern_count", None)

        if prop is not None:
            if subject_bound and value_bound:
                # existence check; when fully ground the index even
                # tells us whether the triple is there at all
                if exact is not None and subject is not None and \
                        value is not None:
                    return 0.5 if exact(subject, prop, value) else 0.25
                return 0.5
            if subject_bound:
                if exact is not None and subject is not None:
                    return float(exact(subject, prop, None))
                return max(self.stats.fanout(prop), 0.1)
            if value_bound:
                if exact is not None and value is not None:
                    return float(exact(None, prop, value))
                return max(self.stats.fanin(prop), 0.1)
            return max(self.stats.property_count(prop), 1)
        # predicate unbound (a variable): penalized — no run of a
        # single permutation index covers an unbound-predicate scan
        # with both endpoints free
        factor = self.UNBOUND_PREDICATE_FACTOR
        if subject_bound and value_bound:
            if exact is not None and subject is not None and \
                    value is not None:
                return float(exact(subject, None, value)) * factor
            return 1.0 * factor
        if subject_bound or value_bound:
            constant = subject if subject_bound else value
            if exact is not None and constant is not None:
                count = exact(constant, None, None) if subject_bound \
                    else exact(None, None, constant)
                return float(count) * factor
            distinct = max(self.stats.distinct_subjects(), 1)
            return (total / distinct) * factor
        return total * factor

    @staticmethod
    def _is_bound(component, bound):
        if isinstance(component, ast.Var):
            return component.name in bound
        return True

    def order_patterns(self, patterns, bound=None):
        """Greedy cheapest-first ordering of a BGP's patterns.

        Starting from the externally bound variables, repeatedly select
        the pattern with the lowest estimated cardinality, then mark its
        variables bound.  This is the classical selectivity-driven join
        ordering SSDM applies to each ObjectLog conjunction.
        """
        bound = set(bound or ())
        remaining = list(patterns)
        ordered = []
        while remaining:
            best_index = 0
            best_cost = None
            for index, pattern in enumerate(remaining):
                cost = self.pattern_cardinality(pattern, bound)
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    best_index = index
            chosen = remaining.pop(best_index)
            ordered.append(chosen)
            for component in (chosen.subject, chosen.predicate,
                              chosen.value):
                if isinstance(component, ast.Var):
                    bound.add(component.name)
        return ordered

    def annotate_bgp(self, patterns, bound=None):
        """Per-pattern cardinality estimates, in execution order.

        Returns [(pattern, estimate)], threading the bound-variable set
        exactly as execution would — the numbers EXPLAIN shows.
        """
        bound = set(bound or ())
        out = []
        for pattern in patterns:
            out.append((pattern, self.pattern_cardinality(pattern, bound)))
            for component in (pattern.subject, pattern.predicate,
                              pattern.value):
                if isinstance(component, ast.Var):
                    bound.add(component.name)
        return out

    def plan_cardinality(self, patterns, bound=None):
        """Rough total-cardinality estimate of a conjunction (for tests
        and EXPLAIN output)."""
        bound = set(bound or ())
        total = 1.0
        for pattern in self.order_patterns(patterns, bound):
            total *= max(self.pattern_cardinality(pattern, bound), 0.1)
            for component in (pattern.subject, pattern.predicate,
                              pattern.value):
                if isinstance(component, ast.Var):
                    bound.add(component.name)
        return total


def estimate_plan_cost(plan, graph):
    """Price a whole logical plan for cost-based admission.

    The sum of estimated BGP cardinalities across the plan, with each
    property-path scan priced at the full triple count (an unbounded
    path may touch the whole graph).  Deliberately crude: admission only
    needs to tell "point lookup" from "analytical scan" to route a
    query into the right priority lane — it never rejects on cost
    alone, so an estimation error costs queue position, not
    correctness.
    """
    from repro.algebra.logical import BGP, PathScan

    model = CostModel(graph)
    total = 0.0
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, BGP):
            if node.patterns:
                total += model.plan_cardinality(node.patterns)
        elif isinstance(node, PathScan):
            total += float(max(model.stats.triple_count, 1))
        stack.extend(node.children())
    return total
