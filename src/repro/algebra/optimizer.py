"""Cost-based plan optimization.

Walks the logical plan and reorders each BGP's triple patterns with the
greedy selectivity-driven algorithm of :class:`repro.algebra.cost.CostModel`,
threading the set of already-bound variables through the tree so patterns
deeper in a join see what the outer operators bind first (the Amos II
predicate-reordering step, section 5.4.5).
"""

from __future__ import annotations

from repro.algebra.cost import CostModel
from repro.observability import span as _span
from repro.sparql import ast
from repro.algebra.logical import (
    BGP, Distinct, Extend, Filter, GraphScope, Group, Join, LeftJoin, Minus,
    OrderBy, PathScan, PlanNode, Project, Slice, SubQuery, TopK, Union, Unit,
    ValuesTable, pattern_variables,
)


def optimize(plan, graph):
    """Return a plan with cost-ordered BGPs for the given graph."""
    with _span("optimize"):
        model = CostModel(graph)
        plan = _optimize(plan, model, set())
        plan = _fuse_topk(plan)
        _push_projection(plan)
        return plan


def _fuse_topk(node):
    """Fuse ``Slice(OrderBy(x), limit=k)`` into a :class:`TopK` node.

    A Project directly between the two commutes with both (it neither
    reorders nor drops rows, and the sort keys are evaluated below it),
    so ``Slice(Project(OrderBy(x)))`` becomes ``Project(TopK(x))`` —
    with the bonus that only the surviving k rows get projected.  Any
    other intervening operator (Distinct in particular, whose output
    cardinality depends on the full sorted stream) blocks the fusion.
    """
    for field in node._fields:
        value = getattr(node, field)
        if isinstance(value, PlanNode):
            setattr(node, field, _fuse_topk(value))
        elif isinstance(value, list):
            setattr(node, field, [
                _fuse_topk(item) if isinstance(item, PlanNode) else item
                for item in value
            ])
    if not isinstance(node, Slice) or node.limit is None:
        return node
    inner = node.input
    if isinstance(inner, OrderBy):
        return TopK(inner.input, inner.keys, node.limit, node.offset)
    if isinstance(inner, Project) and isinstance(inner.input, OrderBy):
        order = inner.input
        return Project(
            TopK(order.input, order.keys, node.limit, node.offset),
            inner.variables,
        )
    return node


def _push_projection(node):
    """Annotate straight-line ``Project → BGP`` pipelines.

    When nothing between a Project and its BGP observes the dropped
    variables, the BGP's ID-space decode may skip materializing them
    (``BGP.keep``).  Only variable-keyed OrderBy nodes may intervene
    (their sort variables join the kept set); any other operator — in
    particular Distinct, whose multiplicities depend on the full row —
    blocks the annotation.  The join itself still binds and constrains
    every pattern variable.
    """
    for child in node.children():
        _push_projection(child)
    if not isinstance(node, Project):
        return
    needed = set(node.variables)
    inner = node.input
    while isinstance(inner, (OrderBy, TopK)):
        if not all(isinstance(expr, ast.Var) for expr, _ in inner.keys):
            return
        needed.update(expr.name for expr, _ in inner.keys)
        inner = inner.input
    if isinstance(inner, BGP):
        inner.keep = needed


def _optimize(node, model, bound):
    if isinstance(node, BGP):
        return BGP(model.order_patterns(node.patterns, bound))
    if isinstance(node, Join):
        left = _optimize(node.left, model, bound)
        right = _optimize(
            node.right, model, bound | pattern_variables(node.left)
        )
        # prefer evaluating the side with lower estimated cardinality first
        if _should_swap(node, model, bound):
            left2 = _optimize(node.right, model, bound)
            right2 = _optimize(
                node.left, model, bound | pattern_variables(node.right)
            )
            return Join(left2, right2)
        return Join(left, right)
    if isinstance(node, LeftJoin):
        return LeftJoin(
            _optimize(node.left, model, bound),
            _optimize(node.right, model,
                      bound | pattern_variables(node.left)),
            node.condition,
        )
    if isinstance(node, Minus):
        return Minus(
            _optimize(node.left, model, bound),
            _optimize(node.right, model,
                      bound | pattern_variables(node.left)),
        )
    if isinstance(node, Union):
        return Union([_optimize(b, model, bound) for b in node.branches])
    if isinstance(node, Filter):
        return Filter(_optimize(node.input, model, bound), node.expr)
    if isinstance(node, Extend):
        return Extend(_optimize(node.input, model, bound),
                      node.var, node.expr)
    if isinstance(node, GraphScope):
        return GraphScope(node.graph, _optimize(node.input, model, bound))
    if isinstance(node, Group):
        return Group(_optimize(node.input, model, bound),
                     node.group_by, node.aggregates)
    if isinstance(node, Project):
        return Project(_optimize(node.input, model, bound), node.variables)
    if isinstance(node, Distinct):
        return Distinct(_optimize(node.input, model, bound))
    if isinstance(node, OrderBy):
        return OrderBy(_optimize(node.input, model, bound), node.keys)
    if isinstance(node, Slice):
        return Slice(_optimize(node.input, model, bound),
                     node.limit, node.offset)
    if isinstance(node, SubQuery):
        return SubQuery(_optimize(node.plan, model, set()), node.variables)
    if isinstance(node, (PathScan, ValuesTable, Unit)):
        return node
    raise TypeError("unknown plan node %r" % (node,))


def _should_swap(join, model, bound):
    """Heuristic: put the side with fewer estimated solutions on the left
    (it drives the nested-loop join)."""
    left_cost = _side_cost(join.left, model, bound)
    right_cost = _side_cost(join.right, model, bound)
    return right_cost < left_cost * 0.5


def _side_cost(node, model, bound):
    if isinstance(node, BGP):
        return model.plan_cardinality(node.patterns, bound)
    if isinstance(node, Filter):
        return _side_cost(node.input, model, bound) * 0.5
    if isinstance(node, Join):
        return (
            _side_cost(node.left, model, bound)
            * _side_cost(node.right, model, bound)
        )
    if isinstance(node, Union):
        return sum(_side_cost(b, model, bound) for b in node.branches)
    if isinstance(node, ValuesTable):
        return max(len(node.rows), 1)
    if isinstance(node, Unit):
        return 1.0
    return max(model.stats.triple_count, 1)
