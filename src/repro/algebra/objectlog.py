"""ObjectLog rendering: plans as Datalog-style rules in DNF.

Amos II represents each query internally as an ObjectLog expression — a
disjunction of conjunctions of predicates (dissertation section 5.4.4);
SSDM's SciSPARQL translator targets that form, normalizing disjunctive
patterns (UNION) into separate rules (DNF, section 5.4.5).

This module reproduces that normal form over our logical plans:

- :func:`disjunctive_normal_form` distributes UNION over conjunction,
  producing a list of conjunctions of atoms;
- :func:`to_objectlog` renders the rules textually, which is also what
  ``SSDM.explain(..., objectlog=True)`` shows.

The atoms:

========================  ====================================================
``triple(s, p, v)``       one triple-pattern predicate (the BGP element)
``path(s, path, v)``      a property-path predicate
``filter(expr)``          a selection predicate
``bind(var, expr)``       a computed binding
``optional([...], cond)`` a left-join with its own (nested) DNF
``minus([...])``          an anti-join with a nested DNF
``graph(g, [...])``       a named-graph scope with a nested DNF
``values(vars, n)``       an inline table
``subquery(vars)``        an opaque nested SELECT
========================  ====================================================
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.rdf.term import BlankNode, Literal, URI
from repro.sparql import ast
from repro.algebra.logical import (
    BGP, Distinct, Extend, Filter, GraphScope, Group, Join, LeftJoin,
    Minus, OrderBy, PathScan, Project, Slice, SubQuery, TopK, Union, Unit,
    ValuesTable,
)


class Atom:
    """One ObjectLog predicate."""

    def __init__(self, kind, *parts):
        self.kind = kind
        self.parts = parts

    def __repr__(self):
        return "Atom(%s)" % self.render()

    def __eq__(self, other):
        return (
            isinstance(other, Atom)
            and self.kind == other.kind
            and self.parts == other.parts
        )

    def render(self):
        if self.kind == "triple":
            return "triple(%s, %s, %s)" % tuple(
                _term(p) for p in self.parts
            )
        if self.kind == "path":
            subject, path, value = self.parts
            return "path(%s, %s, %s)" % (
                _term(subject), _path(path), _term(value)
            )
        if self.kind == "filter":
            return "filter(%s)" % _expr(self.parts[0])
        if self.kind == "bind":
            return "bind(%s, %s)" % (
                _term(self.parts[0]), _expr(self.parts[1])
            )
        if self.kind == "optional":
            inner, condition = self.parts
            rendered = " | ".join(
                ", ".join(atom.render() for atom in conj)
                for conj in inner
            )
            if condition is not None:
                return "optional({%s} on %s)" % (
                    rendered, _expr(condition)
                )
            return "optional({%s})" % rendered
        if self.kind == "minus":
            rendered = " | ".join(
                ", ".join(atom.render() for atom in conj)
                for conj in self.parts[0]
            )
            return "minus({%s})" % rendered
        if self.kind == "graph":
            name, inner = self.parts
            rendered = " | ".join(
                ", ".join(atom.render() for atom in conj)
                for conj in inner
            )
            return "graph(%s, {%s})" % (_term(name), rendered)
        if self.kind == "values":
            variables, count = self.parts
            return "values((%s), %d rows)" % (
                ", ".join(_term(v) for v in variables), count
            )
        if self.kind == "subquery":
            return "subquery(%s)" % ", ".join(
                "?" + name for name in self.parts[0]
            )
        return "%s(%s)" % (self.kind, ", ".join(map(str, self.parts)))


def disjunctive_normal_form(plan):
    """The pattern part of a plan as a list of conjunctions of atoms.

    UNION distributes over conjunction: ``A . {B UNION C}`` becomes
    ``[A, B] | [A, C]``.  Solution modifiers (group/order/slice/project/
    distinct) are transparent — use :func:`modifiers_of` for those.
    """
    if isinstance(plan, Unit):
        return [[]]
    if isinstance(plan, BGP):
        return [[Atom("triple", p.subject, p.predicate, p.value)
                 for p in plan.patterns]]
    if isinstance(plan, PathScan):
        return [[Atom("path", plan.subject, plan.path, plan.value)]]
    if isinstance(plan, Join):
        out = []
        for left in disjunctive_normal_form(plan.left):
            for right in disjunctive_normal_form(plan.right):
                out.append(left + right)
        return out
    if isinstance(plan, Union):
        out = []
        for branch in plan.branches:
            out.extend(disjunctive_normal_form(branch))
        return out
    if isinstance(plan, Filter):
        return [
            conj + [Atom("filter", plan.expr)]
            for conj in disjunctive_normal_form(plan.input)
        ]
    if isinstance(plan, Extend):
        return [
            conj + [Atom("bind", plan.var, plan.expr)]
            for conj in disjunctive_normal_form(plan.input)
        ]
    if isinstance(plan, LeftJoin):
        inner = disjunctive_normal_form(plan.right)
        return [
            conj + [Atom("optional", inner, plan.condition)]
            for conj in disjunctive_normal_form(plan.left)
        ]
    if isinstance(plan, Minus):
        inner = disjunctive_normal_form(plan.right)
        return [
            conj + [Atom("minus", inner)]
            for conj in disjunctive_normal_form(plan.left)
        ]
    if isinstance(plan, GraphScope):
        inner = disjunctive_normal_form(plan.input)
        return [[Atom("graph", plan.graph, inner)]]
    if isinstance(plan, ValuesTable):
        return [[Atom("values", plan.variables, len(plan.rows))]]
    if isinstance(plan, SubQuery):
        return [[Atom("subquery", plan.variables)]]
    if isinstance(plan, (Project, Distinct, OrderBy, TopK, Slice, Group)):
        return disjunctive_normal_form(plan.input)
    raise TypeError("cannot normalize %r" % (plan,))


def modifiers_of(plan):
    """Collect the operational wrappers above the pattern part."""
    out = []
    node = plan
    while True:
        if isinstance(node, Project):
            out.append("project(%s)" % ", ".join(
                "?" + v for v in node.variables
            ))
            node = node.input
        elif isinstance(node, Distinct):
            out.append("distinct")
            node = node.input
        elif isinstance(node, OrderBy):
            out.append("order(%s)" % ", ".join(
                ("asc " if asc else "desc ") + _expr(expr)
                for expr, asc in node.keys
            ))
            node = node.input
        elif isinstance(node, TopK):
            out.append("topk(%s, limit=%s, offset=%s)" % (
                ", ".join(
                    ("asc " if asc else "desc ") + _expr(expr)
                    for expr, asc in node.keys
                ),
                node.limit, node.offset,
            ))
            node = node.input
        elif isinstance(node, Slice):
            out.append("slice(limit=%s, offset=%s)"
                       % (node.limit, node.offset))
            node = node.input
        elif isinstance(node, Group):
            out.append("group(%d keys, %d aggregates)"
                       % (len(node.group_by), len(node.aggregates)))
            node = node.input
        elif isinstance(node, Filter) and _has_group_below(node.input):
            # HAVING filters sit between Group and Project; ordinary
            # filters belong to the pattern part
            out.append("having(%s)" % _expr(node.expr))
            node = node.input
        else:
            return out, node


def _has_group_below(node):
    while isinstance(node, Filter):
        node = node.input
    return isinstance(node, Group)


def to_objectlog(plan, columns=None, head="query"):
    """Render a plan as ObjectLog rules, one per DNF disjunct."""
    modifiers, pattern = modifiers_of(plan)
    disjuncts = disjunctive_normal_form(pattern)
    head_vars = ", ".join("?" + c for c in (columns or []))
    lines = []
    for conjunction in disjuncts:
        body = ",\n    ".join(atom.render() for atom in conjunction) \
            or "true"
        lines.append("%s(%s) :-\n    %s." % (head, head_vars, body))
    for modifier in reversed(modifiers):
        lines.append("%% %s" % modifier)
    return "\n".join(lines)


# -- rendering helpers --------------------------------------------------------

def _term(value):
    if isinstance(value, ast.Var):
        return "?" + value.name
    if isinstance(value, URI):
        return "<%s>" % value.value
    if isinstance(value, Literal):
        # numbers and booleans read better bare in the calculus form
        if value.is_numeric() or isinstance(value.value, bool):
            return value.lexical_form()
        return value.n3()
    if isinstance(value, BlankNode):
        return value.n3()
    if hasattr(value, "n3"):
        return value.n3()
    return repr(value)


def _path(path):
    if isinstance(path, URI):
        return "<%s>" % path.value
    if isinstance(path, ast.PathLink):
        return "<%s>" % path.uri.value
    if isinstance(path, ast.PathInverse):
        return "^%s" % _path(path.path)
    if isinstance(path, ast.PathSequence):
        return "/".join(_path(p) for p in path.parts)
    if isinstance(path, ast.PathAlternative):
        return "(%s)" % "|".join(_path(p) for p in path.parts)
    if isinstance(path, ast.PathMod):
        return "%s%s" % (_path(path.path), path.modifier)
    if isinstance(path, ast.PathNegated):
        items = ["<%s>" % u.value for u in path.forward]
        items += ["^<%s>" % u.value for u in path.inverse]
        return "!(%s)" % "|".join(items)
    return repr(path)


def _expr(expr):
    if expr is None:
        return "true"
    if isinstance(expr, ast.Var):
        return "?" + expr.name
    if isinstance(expr, ast.TermExpr):
        return _term(expr.term)
    if isinstance(expr, ast.BinaryOp):
        return "%s(%s, %s)" % (
            _OP_NAMES.get(expr.op, expr.op),
            _expr(expr.left), _expr(expr.right),
        )
    if isinstance(expr, ast.UnaryOp):
        return "%s(%s)" % (
            "not" if expr.op == "!" else "neg", _expr(expr.operand)
        )
    if isinstance(expr, ast.FunctionCall):
        name = expr.name if isinstance(expr.name, str) \
            else "<%s>" % expr.name.value
        return "%s(%s)" % (
            name.lower() if isinstance(expr.name, str) else name,
            ", ".join(_expr(a) for a in expr.args),
        )
    if isinstance(expr, ast.Aggregate):
        return "%s(%s)" % (
            expr.name.lower(),
            "*" if expr.expr is None else _expr(expr.expr),
        )
    if isinstance(expr, ast.ArraySubscript):
        subs = []
        for sub in expr.subscripts:
            if isinstance(sub, ast.RangeSubscript):
                subs.append("%s:%s:%s" % (
                    _opt(sub.lo), _opt(sub.stride), _opt(sub.hi)
                ))
            else:
                subs.append(_expr(sub))
        return "aref(%s, [%s])" % (_expr(expr.base), ", ".join(subs))
    if isinstance(expr, ast.Closure):
        return "closure((%s), %s)" % (
            ", ".join("?" + p.name for p in expr.params),
            _expr(expr.body),
        )
    if isinstance(expr, ast.ExistsExpr):
        return "%sexists{...}" % ("not_" if expr.negated else "")
    if isinstance(expr, ast.InExpr):
        return "%sin(%s, [%s])" % (
            "not_" if expr.negated else "",
            _expr(expr.expr),
            ", ".join(_expr(c) for c in expr.choices),
        )
    return repr(expr)


def _opt(part):
    return "" if part is None else _expr(part)


_OP_NAMES = {
    "=": "eq", "!=": "ne", "<": "lt", ">": "gt", "<=": "le", ">=": "ge",
    "+": "plus", "-": "minus", "*": "times", "/": "div",
    "&&": "and", "||": "or",
}
