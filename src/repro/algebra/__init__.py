"""Query translation, normalization, and cost-based optimization.

SSDM translates SciSPARQL into a domain-calculus representation, applies
normalization and rewriting (filter pushdown, constant folding), and lets a
cost-based optimizer order the triple-pattern predicates of every
conjunction before execution (dissertation sections 5.4.3-5.4.5).  Here the
calculus is a logical operator tree (:mod:`repro.algebra.logical`) whose
basic graph patterns remain flat predicate lists — the ObjectLog analogue —
so the optimizer can permute them freely.
"""

from repro.algebra import logical
from repro.algebra.translator import translate
from repro.algebra.rewriter import rewrite
from repro.algebra.optimizer import optimize
from repro.algebra.cost import CostModel

__all__ = ["logical", "translate", "rewrite", "optimize", "CostModel"]
