"""Translation of SciSPARQL ASTs into the logical algebra.

Follows the *compositional* SPARQL semantics the dissertation adopts
(section 5.4.2): each graph-pattern constructor maps to an algebra
operator, group-level FILTERs scope over their whole group, and a FILTER
that is the direct body of an OPTIONAL becomes the left-join *condition* —
the detail that distinguishes compositional from operational semantics for
patterns such as ``OPTIONAL { ?y :q ?z FILTER(?x > ?z) }`` where the filter
references variables bound only outside the optional part.

Aggregates found in SELECT / HAVING / ORDER BY are pulled into a
:class:`~repro.algebra.logical.Group` node and replaced by internal
variables, mirroring SSDM's rewriting of queries into its Top-Level
Aggregate form.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.exceptions import QueryError
from repro.observability import span as _span
from repro.sparql import ast
from repro.algebra import logical
from repro.algebra.logical import (
    BGP, Distinct, Extend, Filter, GraphScope, Group, Join, LeftJoin, Minus,
    OrderBy, PathScan, Project, Slice, SubQuery, Union, Unit, ValuesTable,
)


def translate(query):
    """Translate a parsed query AST into a logical plan.

    For SELECT queries returns (plan, projected_variable_names).
    For ASK returns (plan, []).  CONSTRUCT/DESCRIBE translate their WHERE
    clause; templates are handled by the engine.
    """
    with _span("translate"):
        return Translator().translate_query(query)


class Translator:
    def __init__(self):
        self._counter = 0

    def _fresh(self, stem):
        self._counter += 1
        return "_%s%d" % (stem, self._counter)

    # -- query level -------------------------------------------------------------

    def translate_query(self, query):
        if isinstance(query, ast.SelectQuery):
            return self.translate_select(query)
        if isinstance(query, ast.AskQuery):
            plan = self.translate_pattern(query.where)
            return Slice(plan, limit=1), []
        if isinstance(query, (ast.ConstructQuery,)):
            plan = self.translate_pattern(query.where)
            plan = self._apply_modifiers_basic(plan, query.modifiers)
            return plan, sorted(logical.pattern_variables(plan))
        if isinstance(query, ast.DescribeQuery):
            if query.where is None:
                return Unit(), []
            plan = self.translate_pattern(query.where)
            return plan, sorted(logical.pattern_variables(plan))
        raise QueryError("cannot translate %r" % (query,))

    def translate_select(self, query):
        plan = self.translate_pattern(query.where)
        modifiers = query.modifiers

        # -- aggregation --------------------------------------------------
        aggregates: Dict[str, ast.Aggregate] = {}
        projection = query.projection
        select_items: List[Tuple[ast.Node, ast.Var]] = []
        if projection == "*":
            variables = sorted(logical.pattern_variables(plan))
            select_items = [(ast.Var(name), ast.Var(name))
                            for name in variables]
        else:
            for expr, alias in projection:
                if alias is None:
                    if isinstance(expr, ast.Var):
                        alias = expr
                    else:
                        alias = ast.Var(self._fresh("expr"))
                select_items.append((expr, alias))

        rewritten_items = [
            (self._extract_aggregates(expr, aggregates), alias)
            for expr, alias in select_items
        ]
        having = [
            self._extract_aggregates(expr, aggregates)
            for expr in modifiers.having
        ]
        order_keys = [
            (self._extract_aggregates(expr, aggregates), ascending)
            for expr, ascending in modifiers.order_by
        ]

        if modifiers.group_by or aggregates:
            plan = Group(plan, modifiers.group_by, aggregates)
            for expr, alias in modifiers.group_by:
                if alias is not None:
                    pass  # Group exposes the alias directly
        for expr in having:
            plan = Filter(plan, expr)

        # -- projected expressions ----------------------------------------
        out_names = []
        for expr, alias in rewritten_items:
            out_names.append(alias.name)
            if isinstance(expr, ast.Var) and expr.name == alias.name:
                continue
            plan = Extend(plan, alias, expr)

        if order_keys:
            plan = OrderBy(plan, order_keys)
        plan = Project(plan, out_names)
        if query.distinct or query.reduced:
            plan = Distinct(plan)
        if modifiers.limit is not None or modifiers.offset is not None:
            plan = Slice(plan, modifiers.limit, modifiers.offset)
        return plan, out_names

    def _apply_modifiers_basic(self, plan, modifiers):
        if modifiers.order_by:
            plan = OrderBy(plan, modifiers.order_by)
        if modifiers.limit is not None or modifiers.offset is not None:
            plan = Slice(plan, modifiers.limit, modifiers.offset)
        return plan

    def _extract_aggregates(self, expr, registry):
        """Replace Aggregate nodes with internal variables, registering
        them for the Group operator (deduplicating equal aggregates)."""
        if isinstance(expr, ast.Aggregate):
            for name, existing in registry.items():
                if existing == expr:
                    return ast.Var(name)
            name = self._fresh("agg")
            registry[name] = expr
            return ast.Var(name)
        if isinstance(expr, ast.BinaryOp):
            return ast.BinaryOp(
                expr.op,
                self._extract_aggregates(expr.left, registry),
                self._extract_aggregates(expr.right, registry),
            )
        if isinstance(expr, ast.UnaryOp):
            return ast.UnaryOp(
                expr.op, self._extract_aggregates(expr.operand, registry)
            )
        if isinstance(expr, ast.FunctionCall):
            return ast.FunctionCall(
                expr.name,
                [self._extract_aggregates(a, registry) for a in expr.args],
            )
        if isinstance(expr, ast.ArraySubscript):
            subs = []
            for sub in expr.subscripts:
                if isinstance(sub, ast.RangeSubscript):
                    subs.append(ast.RangeSubscript(
                        *(None if part is None
                          else self._extract_aggregates(part, registry)
                          for part in (sub.lo, sub.stride, sub.hi))
                    ))
                else:
                    subs.append(self._extract_aggregates(sub, registry))
            return ast.ArraySubscript(
                self._extract_aggregates(expr.base, registry), subs
            )
        return expr

    # -- pattern level --------------------------------------------------------------

    def translate_pattern(self, pattern):
        if isinstance(pattern, ast.GroupPattern):
            return self._translate_group(pattern)
        raise QueryError("expected group pattern, got %r" % (pattern,))

    def _translate_group(self, group):
        current = None
        pending: List[ast.TriplePattern] = []
        filters: List[ast.Node] = []

        def flush():
            nonlocal current, pending
            if pending:
                current = self._join(current, self._bgp(pending))
                pending = []

        for element in group.elements:
            if isinstance(element, ast.TriplePattern):
                pending.append(element)
            elif isinstance(element, ast.FilterClause):
                filters.append(element.expr)
            elif isinstance(element, ast.OptionalPattern):
                flush()
                right, condition = self._translate_optional(element.pattern)
                current = LeftJoin(current or Unit(), right, condition)
            elif isinstance(element, ast.UnionPattern):
                flush()
                branches = [
                    self.translate_pattern(b) for b in element.alternatives
                ]
                current = self._join(current, Union(branches))
            elif isinstance(element, ast.MinusPattern):
                flush()
                current = Minus(
                    current or Unit(),
                    self.translate_pattern(element.pattern),
                )
            elif isinstance(element, ast.GraphGraphPattern):
                flush()
                inner = self.translate_pattern(element.pattern)
                current = self._join(
                    current, GraphScope(element.graph, inner)
                )
            elif isinstance(element, ast.BindClause):
                flush()
                current = Extend(
                    current or Unit(), element.var, element.expr
                )
            elif isinstance(element, ast.ValuesClause):
                flush()
                current = self._join(
                    current,
                    ValuesTable(element.variables, element.rows),
                )
            elif isinstance(element, ast.GroupPattern):
                flush()
                current = self._join(
                    current, self.translate_pattern(element)
                )
            elif isinstance(element, ast.SubSelect):
                flush()
                sub_plan, names = self.translate_select(element.query)
                current = self._join(current, SubQuery(sub_plan, names))
            else:
                raise QueryError(
                    "unsupported pattern element %r" % (element,)
                )
        flush()
        if current is None:
            current = Unit()
        for expr in filters:
            current = Filter(current, expr)
        return current

    def _translate_optional(self, pattern):
        """OPTIONAL body: top-level FILTERs become the left-join condition
        (compositional semantics, section 5.4.2)."""
        conditions = []
        remaining = []
        for element in pattern.elements:
            if isinstance(element, ast.FilterClause):
                conditions.append(element.expr)
            else:
                remaining.append(element)
        plan = self._translate_group(ast.GroupPattern(remaining))
        condition = None
        for expr in conditions:
            condition = expr if condition is None \
                else ast.BinaryOp("&&", condition, expr)
        return plan, condition

    def _bgp(self, patterns):
        """Split path predicates out of a conjunction of triple patterns."""
        plain = []
        plan = None
        for pattern in patterns:
            if isinstance(pattern.predicate, (
                ast.PathSequence, ast.PathAlternative, ast.PathInverse,
                ast.PathMod, ast.PathNegated, ast.PathLink,
            )):
                scan = PathScan(
                    pattern.subject, pattern.predicate, pattern.value
                )
                plan = self._join(plan, scan)
            else:
                plain.append(pattern)
        if plain:
            plan = self._join(plan, BGP(plain))
        return plan if plan is not None else Unit()

    @staticmethod
    def _join(left, right):
        if left is None or isinstance(left, Unit):
            return right
        if right is None or isinstance(right, Unit):
            return left
        # adjacent BGPs merge so the optimizer sees one conjunction
        if isinstance(left, BGP) and isinstance(right, BGP):
            return BGP(left.patterns + right.patterns)
        return Join(left, right)
