"""Logical algebra operators for translated SciSPARQL queries.

The tree mirrors the SPARQL-algebra operators the dissertation extends
(section 5.4.4): joins, left joins (OPTIONAL), unions, filters, extends
(BIND), property-path scans, grouping/aggregation, and solution modifiers —
plus the SciSPARQL-specific array machinery, which lives in expressions.

A :class:`BGP` keeps its triple patterns as a *flat list* so the cost-based
optimizer can reorder them (the ObjectLog conjunction analogue).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.sparql import ast


class PlanNode:
    """Base logical operator with pretty-printing for EXPLAIN output."""

    _fields: Tuple[str, ...] = ()

    def children(self):
        out = []
        for field in self._fields:
            value = getattr(self, field)
            if isinstance(value, PlanNode):
                out.append(value)
            elif isinstance(value, list):
                out.extend(v for v in value if isinstance(v, PlanNode))
        return out

    def explain(self, indent=0):
        label = type(self).__name__
        details = self._details()
        line = "  " * indent + label + (": " + details if details else "")
        lines = [line]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def _details(self):
        return ""

    def __repr__(self):
        return self.explain()


class BGP(PlanNode):
    """A basic graph pattern: a conjunction of triple patterns.

    ``patterns`` holds :class:`repro.sparql.ast.TriplePattern` instances
    whose components are Vars or ground terms (paths are split out into
    :class:`PathScan` by the translator).
    """

    _fields = ("patterns",)

    def __init__(self, patterns):
        self.patterns = list(patterns)
        #: Optional projection-pushdown annotation: when set, only these
        #: variables are observed above this BGP, so the ID-space fast
        #: path may skip decoding the others (the join itself still
        #: constrains every variable).  None = decode everything.
        self.keep = None

    def _details(self):
        return "%d patterns" % len(self.patterns)


class PathScan(PlanNode):
    """One property-path pattern (subject, path, value)."""

    _fields = ("subject", "path", "value")

    def __init__(self, subject, path, value):
        self.subject = subject
        self.path = path
        self.value = value

    def _details(self):
        return "%r %r %r" % (self.subject, self.path, self.value)


class Join(PlanNode):
    _fields = ("left", "right")

    def __init__(self, left, right):
        self.left = left
        self.right = right


class LeftJoin(PlanNode):
    """OPTIONAL: keep left solutions, extend with right when compatible."""

    _fields = ("left", "right", "condition")

    def __init__(self, left, right, condition=None):
        self.left = left
        self.right = right
        self.condition = condition


class Union(PlanNode):
    _fields = ("branches",)

    def __init__(self, branches):
        self.branches = list(branches)


class Minus(PlanNode):
    _fields = ("left", "right")

    def __init__(self, left, right):
        self.left = left
        self.right = right


class Filter(PlanNode):
    _fields = ("input", "expr")

    def __init__(self, input, expr):
        self.input = input
        self.expr = expr

    def _details(self):
        return repr(self.expr)


class Extend(PlanNode):
    """BIND / projected expression: add var := expr to each solution."""

    _fields = ("input", "var", "expr")

    def __init__(self, input, var, expr):
        self.input = input
        self.var = var
        self.expr = expr

    def _details(self):
        return "%r := %r" % (self.var, self.expr)


class ValuesTable(PlanNode):
    _fields = ("variables", "rows")

    def __init__(self, variables, rows):
        self.variables = list(variables)
        self.rows = [list(r) for r in rows]

    def _details(self):
        return "%d rows" % len(self.rows)


class GraphScope(PlanNode):
    """GRAPH g { ... }: evaluate the inner plan against a named graph."""

    _fields = ("graph", "input")

    def __init__(self, graph, input):
        self.graph = graph
        self.input = input

    def _details(self):
        return repr(self.graph)


class Unit(PlanNode):
    """The empty pattern: one empty solution."""

    _fields = ()


class Group(PlanNode):
    """GROUP BY with aggregate computation.

    ``group_by`` is a list of (expr, alias-Var-or-None); ``aggregates``
    maps fresh internal variable names to :class:`ast.Aggregate` nodes
    discovered in SELECT / HAVING / ORDER BY.
    """

    _fields = ("input", "group_by", "aggregates")

    def __init__(self, input, group_by, aggregates):
        self.input = input
        self.group_by = list(group_by)
        self.aggregates = dict(aggregates)

    def _details(self):
        return "%d keys, %d aggregates" % (
            len(self.group_by), len(self.aggregates)
        )


class Project(PlanNode):
    """Restrict solutions to the projection variables."""

    _fields = ("input", "variables")

    def __init__(self, input, variables):
        self.input = input
        self.variables = list(variables)

    def _details(self):
        return ", ".join("?" + v for v in self.variables)


class Distinct(PlanNode):
    _fields = ("input",)

    def __init__(self, input):
        self.input = input


class OrderBy(PlanNode):
    _fields = ("input", "keys")

    def __init__(self, input, keys):
        self.input = input
        self.keys = list(keys)       # (expr, ascending)


class Slice(PlanNode):
    _fields = ("input", "limit", "offset")

    def __init__(self, input, limit=None, offset=None):
        self.input = input
        self.limit = limit
        self.offset = offset

    def _details(self):
        return "limit=%r offset=%r" % (self.limit, self.offset)


class TopK(PlanNode):
    """A fused OrderBy → Slice: the ``limit+offset`` smallest solutions
    under the sort keys, already sliced.

    The optimizer rewrites ``Slice(OrderBy(x), limit=k)`` (also with a
    Project between, which commutes with both) into this node so the
    engine can keep a bounded heap instead of materializing and fully
    sorting every solution — ORDER BY + LIMIT queries pay O(n log k),
    not O(n log n).
    """

    _fields = ("input", "keys", "limit", "offset")

    def __init__(self, input, keys, limit, offset=None):
        self.input = input
        self.keys = list(keys)       # (expr, ascending)
        self.limit = limit
        self.offset = offset

    def _details(self):
        return "limit=%r offset=%r" % (self.limit, self.offset)


class SubQuery(PlanNode):
    """A nested SELECT evaluated as a pattern (projection included)."""

    _fields = ("plan", "variables")

    def __init__(self, plan, variables):
        self.plan = plan
        self.variables = list(variables)


# ---------------------------------------------------------------------------
# variable analysis
# ---------------------------------------------------------------------------

def pattern_variables(node):
    """The set of variable names a plan node can bind."""
    if isinstance(node, BGP):
        out = set()
        for pattern in node.patterns:
            for component in (pattern.subject, pattern.predicate,
                              pattern.value):
                if isinstance(component, ast.Var):
                    out.add(component.name)
        return out
    if isinstance(node, PathScan):
        out = set()
        for component in (node.subject, node.value):
            if isinstance(component, ast.Var):
                out.add(component.name)
        return out
    if isinstance(node, (Join, LeftJoin, Minus)):
        left = pattern_variables(node.left)
        if isinstance(node, Minus):
            return left
        return left | pattern_variables(node.right)
    if isinstance(node, Union):
        out = set()
        for branch in node.branches:
            out |= pattern_variables(branch)
        return out
    if isinstance(node, Filter):
        return pattern_variables(node.input)
    if isinstance(node, Extend):
        return pattern_variables(node.input) | {node.var.name}
    if isinstance(node, ValuesTable):
        return {v.name for v in node.variables}
    if isinstance(node, GraphScope):
        out = pattern_variables(node.input)
        if isinstance(node.graph, ast.Var):
            out.add(node.graph.name)
        return out
    if isinstance(node, Group):
        out = set()
        for expr, alias in node.group_by:
            if alias is not None:
                out.add(alias.name)
            elif isinstance(expr, ast.Var):
                out.add(expr.name)
        out.update(node.aggregates.keys())
        return out
    if isinstance(node, (Project, SubQuery)):
        return set(node.variables)
    if isinstance(node, (Distinct, OrderBy, Slice)):
        return pattern_variables(node.input)
    if isinstance(node, Unit):
        return set()
    raise TypeError("unknown plan node %r" % (node,))


def expression_variables(expr):
    """Free variables of an AST expression (closure params excluded)."""
    out = set()
    _collect_expr_vars(expr, out)
    return out


def _collect_expr_vars(expr, out):
    if isinstance(expr, ast.Var):
        out.add(expr.name)
    elif isinstance(expr, ast.BinaryOp):
        _collect_expr_vars(expr.left, out)
        _collect_expr_vars(expr.right, out)
    elif isinstance(expr, ast.UnaryOp):
        _collect_expr_vars(expr.operand, out)
    elif isinstance(expr, ast.FunctionCall):
        for arg in expr.args:
            _collect_expr_vars(arg, out)
    elif isinstance(expr, ast.Aggregate):
        if expr.expr is not None:
            _collect_expr_vars(expr.expr, out)
    elif isinstance(expr, ast.ArraySubscript):
        _collect_expr_vars(expr.base, out)
        for sub in expr.subscripts:
            if isinstance(sub, ast.RangeSubscript):
                for part in (sub.lo, sub.stride, sub.hi):
                    if part is not None:
                        _collect_expr_vars(part, out)
            else:
                _collect_expr_vars(sub, out)
    elif isinstance(expr, ast.InExpr):
        _collect_expr_vars(expr.expr, out)
        for choice in expr.choices:
            _collect_expr_vars(choice, out)
    elif isinstance(expr, ast.Closure):
        inner = set()
        _collect_expr_vars(expr.body, inner)
        out.update(inner - {p.name for p in expr.params})
    elif isinstance(expr, ast.ExistsExpr):
        # EXISTS correlates on any shared variable; approximate with the
        # pattern's variables (used only for filter placement)
        out.update(_pattern_ast_vars(expr.pattern))


def _pattern_ast_vars(pattern):
    out = set()
    if isinstance(pattern, ast.GroupPattern):
        for element in pattern.elements:
            out |= _pattern_ast_vars(element)
    elif isinstance(pattern, ast.TriplePattern):
        for component in (pattern.subject, pattern.predicate, pattern.value):
            if isinstance(component, ast.Var):
                out.add(component.name)
    elif isinstance(pattern, (ast.OptionalPattern, ast.MinusPattern)):
        out |= _pattern_ast_vars(pattern.pattern)
    elif isinstance(pattern, ast.UnionPattern):
        for alternative in pattern.alternatives:
            out |= _pattern_ast_vars(alternative)
    elif isinstance(pattern, ast.GraphGraphPattern):
        out |= _pattern_ast_vars(pattern.pattern)
    elif isinstance(pattern, ast.FilterClause):
        out |= expression_variables(pattern.expr)
    elif isinstance(pattern, ast.BindClause):
        out.add(pattern.var.name)
    elif isinstance(pattern, ast.ValuesClause):
        out.update(v.name for v in pattern.variables)
    return out
