"""Array proxies: lazy references to externally stored arrays.

An :class:`ArrayProxy` carries the same descriptor (shape / strides /
offset) as a resident :class:`~repro.arrays.nma.NumericArray`, but instead
of a buffer it holds the identity of an array in an ASEI storage back-end.
SciSPARQL array transformations applied to a proxy *accumulate in the
descriptor* without touching storage; only when the query finally needs
element values does the array-proxy-resolve (APR) operator fetch the
relevant chunks (dissertation chapter 6).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.arrays.nma import (
    NumericArray,
    Span,
    derive_descriptor,
    iter_runs,
    row_major_strides,
    ELEMENT_TYPES,
)
from repro.exceptions import ArrayBoundsError, StorageError


class ArrayProxy:
    """A lazily evaluated view of an array stored in a back-end.

    ``store`` is any object implementing the ASEI protocol
    (:class:`repro.storage.asei.ArrayStore`); ``array_id`` identifies the
    stored array within it.
    """

    is_rdf_array_value = True

    __slots__ = ("store", "array_id", "element_type", "base_shape",
                 "shape", "strides", "offset", "_hash")

    def __init__(self, store, array_id, element_type, base_shape,
                 shape=None, strides=None, offset=0):
        if element_type not in ELEMENT_TYPES:
            raise StorageError("unknown element type %r" % (element_type,))
        self.store = store
        self.array_id = array_id
        self.element_type = element_type
        self.base_shape = tuple(int(e) for e in base_shape)
        self.shape = self.base_shape if shape is None else tuple(shape)
        self.strides = (
            row_major_strides(self.base_shape) if strides is None
            else tuple(strides)
        )
        self.offset = int(offset)
        self._hash = None

    # -- descriptor facts -----------------------------------------------------

    @property
    def dtype(self):
        return ELEMENT_TYPES[self.element_type]

    @property
    def ndim(self):
        return len(self.shape)

    @property
    def element_count(self):
        count = 1
        for extent in self.shape:
            count *= extent
        return count

    @property
    def base_element_count(self):
        count = 1
        for extent in self.base_shape:
            count *= extent
        return count

    def is_whole_array(self):
        """True when the view covers the stored array without reordering."""
        return (
            self.offset == 0
            and self.shape == self.base_shape
            and self.strides == row_major_strides(self.base_shape)
        )

    # -- lazy transformations --------------------------------------------------

    def _derived(self, shape, strides, offset):
        return ArrayProxy(
            self.store, self.array_id, self.element_type, self.base_shape,
            shape=shape, strides=strides, offset=offset,
        )

    def subscript(self, subscripts):
        """Apply ints / Spans / Nones lazily.  A full int subscript still
        returns a 0-d proxy; APR turns it into a scalar on resolve."""
        shape, strides, offset = derive_descriptor(
            self.shape, self.strides, self.offset, subscripts
        )
        return self._derived(shape, strides, offset)

    def transpose(self, permutation=None):
        if permutation is None:
            permutation = tuple(reversed(range(self.ndim)))
        if sorted(permutation) != list(range(self.ndim)):
            raise ArrayBoundsError(
                "invalid transposition %r" % (permutation,)
            )
        return self._derived(
            tuple(self.shape[axis] for axis in permutation),
            tuple(self.strides[axis] for axis in permutation),
            self.offset,
        )

    def project(self, axis, index):
        subs = [None] * self.ndim
        subs[axis] = int(index)
        return self.subscript(subs)

    def iter_runs(self):
        """Linear-buffer runs of this view, for APR chunk planning."""
        return iter_runs(self.shape, self.strides, self.offset)

    # -- resolution -------------------------------------------------------------

    def resolve(self, resolver=None):
        """Fetch the elements of this view into a resident NumericArray.

        With no explicit resolver the store's default APR configuration is
        used.  Resolving a 0-d view returns a Python scalar.
        """
        if resolver is None:
            result = self.store.resolve([self])[0]
        else:
            result = resolver.resolve([self])[0]
        if isinstance(result, NumericArray) and result.ndim == 0:
            return result.to_numpy().item()
        return result

    # -- value semantics ----------------------------------------------------------

    def __eq__(self, other):
        if self is other:
            return True
        if not isinstance(other, ArrayProxy):
            return NotImplemented
        return (
            self.store is other.store
            and self.array_id == other.array_id
            and self.shape == other.shape
            and self.strides == other.strides
            and self.offset == other.offset
        )

    def __hash__(self):
        if self._hash is None:
            self._hash = hash(
                ("ArrayProxy", id(self.store), self.array_id,
                 self.shape, self.strides, self.offset)
            )
        return self._hash

    def __repr__(self):
        return "ArrayProxy(id=%r, shape=%r, dtype=%s)" % (
            self.array_id, self.shape, self.element_type
        )

    def n3(self):
        return '"<array-proxy %s shape=%s>"' % (
            self.array_id, "x".join(str(e) for e in self.shape)
        )
