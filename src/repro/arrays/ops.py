"""Array arithmetic, aggregates, and second-order array-algebra functions.

These implement the SciSPARQL built-in array library (dissertation sections
4.1.3-4.1.5) and the Array-Algebra second-order functions the language
gained later (section 4.3.1): *map*, *condense*, and *build*.

All functions accept resident :class:`NumericArray` values; proxies are
resolved by the callers (the engine resolves lazily, as late as possible).
Scalars mix freely with arrays in elementwise arithmetic.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.arrays.nma import NumericArray
from repro.exceptions import EvaluationError, TypeMismatchError


def _as_numpy(value):
    if isinstance(value, NumericArray):
        return value.to_numpy()
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return value
    raise TypeMismatchError(
        "expected number or numeric array, got %r" % (value,)
    )


def _wrap(result):
    result = np.asarray(result)
    if result.ndim == 0:
        return result.item()
    return NumericArray(result)


def elementwise(op, left, right):
    """Elementwise binary arithmetic between arrays and/or scalars.

    Arrays must agree in shape (the paper requires equal shapes for
    array-array arithmetic; scalar operands broadcast over the array).
    """
    left_np = _as_numpy(left)
    right_np = _as_numpy(right)
    left_shape = getattr(left_np, "shape", ())
    right_shape = getattr(right_np, "shape", ())
    if left_shape and right_shape and left_shape != right_shape:
        raise TypeMismatchError(
            "array shape mismatch in arithmetic: %r vs %r"
            % (left_shape, right_shape)
        )
    try:
        return _wrap(op(left_np, right_np))
    except ZeroDivisionError:
        raise EvaluationError("division by zero")


def elementwise_unary(op, value):
    return _wrap(op(_as_numpy(value)))


# -- aggregates over a whole array (section 4.1.5) -------------------------

def _reduce(value, reducer):
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    if not isinstance(value, NumericArray):
        raise TypeMismatchError("expected numeric array, got %r" % (value,))
    if value.element_count == 0:
        raise EvaluationError("aggregate of an empty array")
    return reducer(value.to_numpy())


def array_sum(value):
    """Sum of all elements (SciSPARQL ``array_sum``)."""
    return _reduce(value, lambda a: np.sum(a).item())


def array_avg(value):
    """Mean of all elements (SciSPARQL ``array_avg``)."""
    return _reduce(value, lambda a: np.mean(a).item())


def array_min(value):
    return _reduce(value, lambda a: np.min(a).item())


def array_max(value):
    return _reduce(value, lambda a: np.max(a).item())


def array_count(value):
    if isinstance(value, NumericArray):
        return value.element_count
    return 1


# -- second-order functions (Array Algebra, section 4.3.1) -----------------

_FAST_BINARY = {
    "+": np.add, "-": np.subtract, "*": np.multiply, "/": np.true_divide,
    "min": np.minimum, "max": np.maximum,
}


def array_map(fn, *arrays):
    """Apply ``fn`` elementwise over one or more same-shaped arrays.

    ``fn`` takes as many scalars as there are arrays and returns a scalar.
    This is Array Algebra's MARRAY specialised to aligned inputs.  When
    ``fn`` carries a ``numpy_op`` attribute (installed for built-in
    operators and closures over them) the whole map runs vectorised.
    """
    if not arrays:
        raise EvaluationError("array_map needs at least one array")
    views = []
    shape = None
    for value in arrays:
        if not isinstance(value, NumericArray):
            raise TypeMismatchError(
                "array_map expects arrays, got %r" % (value,)
            )
        if shape is None:
            shape = value.shape
        elif value.shape != shape:
            raise TypeMismatchError(
                "array_map shape mismatch: %r vs %r" % (shape, value.shape)
            )
        views.append(value.to_numpy())
    numpy_op = getattr(fn, "numpy_op", None)
    if numpy_op is not None:
        return NumericArray(np.asarray(numpy_op(*views)))
    flat_inputs = [view.reshape(-1) for view in views]
    out = np.empty(flat_inputs[0].shape[0], dtype=np.float64)
    for position in range(out.shape[0]):
        out[position] = fn(*(flat[position].item() for flat in flat_inputs))
    return NumericArray(out.reshape(shape))


def array_condense(fn, array, axis=None):
    """Reduce an array with a commutative binary function.

    With ``axis=None`` the whole array condenses to a scalar; otherwise
    the given 0-based axis is eliminated.  This is Array Algebra's COND
    operator.  Well-known reducers run vectorised.
    """
    if not isinstance(array, NumericArray):
        raise TypeMismatchError(
            "array_condense expects an array, got %r" % (array,)
        )
    if array.element_count == 0:
        raise EvaluationError("condense of an empty array")
    dense = array.to_numpy()
    numpy_op = getattr(fn, "numpy_op", None)
    if numpy_op is not None and hasattr(numpy_op, "reduce"):
        result = numpy_op.reduce(
            dense if axis is not None else dense.reshape(-1), axis=axis or 0
        )
        return _wrap(result)
    if axis is None:
        flat = dense.reshape(-1)
        accumulator = flat[0].item()
        for position in range(1, flat.shape[0]):
            accumulator = fn(accumulator, flat[position].item())
        return accumulator
    moved = np.moveaxis(dense, axis, 0)
    accumulator = np.array(moved[0], dtype=np.float64)
    for position in range(1, moved.shape[0]):
        layer = moved[position]
        flat_acc = accumulator.reshape(-1)
        flat_layer = layer.reshape(-1)
        for i in range(flat_acc.shape[0]):
            flat_acc[i] = fn(flat_acc[i].item(), flat_layer[i].item())
    return _wrap(accumulator)


def array_build(shape, fn):
    """Construct an array by evaluating ``fn`` at every index tuple.

    Indexes passed to ``fn`` are 1-based, matching SciSPARQL subscript
    conventions.  This is Array Algebra's MARRAY in its generative form.
    """
    shape = tuple(int(e) for e in shape)
    if any(e < 0 for e in shape):
        raise EvaluationError("negative extent in array_build shape")
    out = np.empty(shape, dtype=np.float64)
    if out.size:
        it = np.ndindex(*shape)
        flat = out.reshape(-1)
        for position, index in enumerate(it):
            flat[position] = fn(*(i + 1 for i in index))
    return NumericArray(out)
