"""Resident numeric multidimensional arrays.

An array value is a *descriptor* — shape, strides (in elements), and an
offset into a linear buffer — plus the buffer itself.  All SciSPARQL array
transformations (subscripting with single indices or ranges, projection,
transposition) derive a new descriptor over the same buffer, deferring any
element copying (dissertation section 5.2.2).  The same descriptor algebra
is reused by :class:`repro.arrays.proxy.ArrayProxy` for arrays whose buffer
lives in external storage.

Internal subscripts are 0-based with half-open ranges; the SciSPARQL
language layer converts from the 1-based inclusive syntax of the paper.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ArrayBoundsError, SciSparqlError

#: Supported element types: SciSPARQL stores integer and floating numeric
#: arrays; the codes are storage-format identifiers.
ELEMENT_TYPES = {
    "i4": np.dtype(np.int32),
    "i8": np.dtype(np.int64),
    "f4": np.dtype(np.float32),
    "f8": np.dtype(np.float64),
}

_DTYPE_TO_CODE = {v: k for k, v in ELEMENT_TYPES.items()}


def dtype_code(dtype):
    """The storage code ('i4', 'f8', ...) for a numpy dtype."""
    dtype = np.dtype(dtype)
    try:
        return _DTYPE_TO_CODE[dtype]
    except KeyError:
        raise SciSparqlError("unsupported array element type %r" % dtype)


class Span:
    """A range subscript along one dimension: 0-based, half-open, strided.

    ``Span(None, None)`` selects the whole dimension.  SciSPARQL's 1-based
    inclusive ``lo:hi`` / ``lo:stride:hi`` map to ``Span(lo-1, hi, stride)``.
    """

    __slots__ = ("start", "stop", "step")

    def __init__(self, start=None, stop=None, step=1):
        if step < 1:
            raise SciSparqlError("span step must be positive, got %d" % step)
        self.start = start
        self.stop = stop
        self.step = step

    def resolve(self, extent):
        """Clamp into concrete (start, stop, step) for a dimension size."""
        start = 0 if self.start is None else self.start
        stop = extent if self.stop is None else min(self.stop, extent)
        if start < 0 or start > extent:
            raise ArrayBoundsError(
                "span start %d outside dimension of size %d" % (start, extent)
            )
        return start, max(stop, start), self.step

    def __repr__(self):
        return "Span(%r, %r, %r)" % (self.start, self.stop, self.step)

    def __eq__(self, other):
        return (
            isinstance(other, Span)
            and (self.start, self.stop, self.step)
            == (other.start, other.stop, other.step)
        )

    def __hash__(self):
        return hash(("Span", self.start, self.stop, self.step))


def derive_descriptor(shape, strides, offset, subscripts):
    """Apply a subscript list to a (shape, strides, offset) descriptor.

    Each subscript is an int (eliminates the dimension), a :class:`Span`
    (restricts it), or None (keeps it whole).  Trailing omitted dimensions
    are kept whole — SciSPARQL projection, e.g. ``?a[i]`` on a matrix
    yields row *i* as a vector.

    Returns the derived (shape, strides, offset).
    """
    if len(subscripts) > len(shape):
        raise ArrayBoundsError(
            "%d subscripts for %d-dimensional array"
            % (len(subscripts), len(shape))
        )
    new_shape = []
    new_strides = []
    for axis, sub in enumerate(itertools.chain(
            subscripts, itertools.repeat(None, len(shape) - len(subscripts)))):
        extent = shape[axis]
        stride = strides[axis]
        if sub is None:
            new_shape.append(extent)
            new_strides.append(stride)
        elif isinstance(sub, Span):
            start, stop, step = sub.resolve(extent)
            length = max(0, -(-(stop - start) // step))
            offset += start * stride
            new_shape.append(length)
            new_strides.append(stride * step)
        else:
            index = int(sub)
            if index < 0 or index >= extent:
                raise ArrayBoundsError(
                    "index %d outside dimension %d of size %d"
                    % (index, axis, extent)
                )
            offset += index * stride
    return tuple(new_shape), tuple(new_strides), offset


def row_major_strides(shape):
    """Strides (in elements) of a contiguous row-major array."""
    strides = [1] * len(shape)
    for axis in range(len(shape) - 2, -1, -1):
        strides[axis] = strides[axis + 1] * shape[axis + 1]
    return tuple(strides)


def iter_runs(shape, strides, offset):
    """Yield (start, step, count) runs covering the view in row-major order.

    Each run is the innermost loop of the element odometer: ``count``
    linear buffer positions starting at ``start`` spaced ``step`` apart.
    The APR machinery converts runs to chunk accesses, and the Sequence
    Pattern Detector looks for arithmetic structure across them.
    """
    if not shape:
        yield (offset, 1, 1)
        return
    if any(extent == 0 for extent in shape):
        return
    inner_extent = shape[-1]
    inner_stride = strides[-1]
    outer_shape = shape[:-1]
    outer_strides = strides[:-1]
    for combo in itertools.product(*(range(e) for e in outer_shape)):
        base = offset + sum(i * s for i, s in zip(combo, outer_strides))
        yield (base, inner_stride, inner_extent)


class NumericArray:
    """A resident NMA: descriptor plus linear numpy buffer.

    Construct from nested sequences or a numpy array::

        >>> a = NumericArray([[1, 2], [3, 4]])
        >>> a.shape
        (2, 2)
        >>> a.element((1, 0))
        3

    Instances are treated as immutable after construction (mutating the
    underlying buffer of an array already inserted in a graph is undefined
    behaviour, as for any hash-indexed key).
    """

    #: Marker letting the RDF layer accept arrays as triple values.
    is_rdf_array_value = True

    __slots__ = ("buffer", "shape", "strides", "offset", "_hash")

    def __init__(self, data, dtype=None, _descriptor=None):
        if _descriptor is not None:
            # internal: share an existing buffer under a derived descriptor
            self.buffer = data
            self.shape, self.strides, self.offset = _descriptor
        else:
            dense = np.asarray(data, dtype=dtype)
            if dense.dtype not in _DTYPE_TO_CODE:
                if np.issubdtype(dense.dtype, np.integer):
                    dense = dense.astype(np.int64)
                elif np.issubdtype(dense.dtype, np.floating):
                    dense = dense.astype(np.float64)
                elif np.issubdtype(dense.dtype, np.bool_):
                    dense = dense.astype(np.int64)
                else:
                    raise SciSparqlError(
                        "cannot build numeric array from dtype %r"
                        % dense.dtype
                    )
            self.buffer = np.ascontiguousarray(dense).reshape(-1)
            self.shape = tuple(int(e) for e in dense.shape)
            self.strides = row_major_strides(self.shape)
            self.offset = 0
        self._hash = None

    # -- descriptor facts ---------------------------------------------------

    @property
    def dtype(self):
        return self.buffer.dtype

    @property
    def element_type(self):
        return dtype_code(self.buffer.dtype)

    @property
    def ndim(self):
        return len(self.shape)

    @property
    def element_count(self):
        count = 1
        for extent in self.shape:
            count *= extent
        return count

    def is_scalar(self):
        return self.ndim == 0

    # -- access --------------------------------------------------------------

    def element(self, subscripts):
        """The element at 0-based subscripts, as a Python number."""
        if len(subscripts) != self.ndim:
            raise ArrayBoundsError(
                "%d subscripts for %d-dimensional array"
                % (len(subscripts), self.ndim)
            )
        linear = self.offset
        for axis, index in enumerate(subscripts):
            index = int(index)
            if index < 0 or index >= self.shape[axis]:
                raise ArrayBoundsError(
                    "index %d outside dimension %d of size %d"
                    % (index, axis, self.shape[axis])
                )
            linear += index * self.strides[axis]
        return self.buffer[linear].item()

    def subscript(self, subscripts):
        """Apply ints / Spans / Nones; int-only full subscripting returns a
        Python scalar, otherwise a derived NumericArray view."""
        if (
            len(subscripts) == self.ndim
            and all(not isinstance(s, Span) and s is not None
                    for s in subscripts)
        ):
            return self.element(subscripts)
        descriptor = derive_descriptor(
            self.shape, self.strides, self.offset, subscripts
        )
        return NumericArray(self.buffer, _descriptor=descriptor)

    def transpose(self, permutation=None):
        if permutation is None:
            permutation = tuple(reversed(range(self.ndim)))
        if sorted(permutation) != list(range(self.ndim)):
            raise SciSparqlError("invalid transposition %r" % (permutation,))
        descriptor = (
            tuple(self.shape[axis] for axis in permutation),
            tuple(self.strides[axis] for axis in permutation),
            self.offset,
        )
        return NumericArray(self.buffer, _descriptor=descriptor)

    def project(self, axis, index):
        """Fix one dimension to an index, dropping it (section 5.2.2)."""
        subs = [None] * self.ndim
        subs[axis] = int(index)
        return self.subscript(subs)

    def iter_runs(self):
        return iter_runs(self.shape, self.strides, self.offset)

    def to_numpy(self):
        """Materialize the view as a contiguous numpy array (copies only
        when the view is non-contiguous)."""
        if not self.shape:
            return self.buffer[self.offset:self.offset + 1].reshape(())
        itemsize = self.buffer.dtype.itemsize
        view = np.lib.stride_tricks.as_strided(
            self.buffer[self.offset:],
            shape=self.shape,
            strides=tuple(s * itemsize for s in self.strides),
            writeable=False,
        )
        return view

    def materialize(self):
        """A compact copy of this view (fresh contiguous buffer)."""
        return NumericArray(np.array(self.to_numpy()))

    def to_nested_lists(self):
        return self.to_numpy().tolist()

    def iter_elements(self):
        """All elements in row-major order as Python numbers."""
        flat = self.to_numpy().reshape(-1)
        for value in flat:
            yield value.item()

    # -- value semantics -----------------------------------------------------

    def __eq__(self, other):
        """SciSPARQL array equality: same shape and element values
        (section 4.1.6); dtype differences do not matter."""
        if self is other:
            return True
        if not isinstance(other, NumericArray):
            return NotImplemented
        if self.shape != other.shape:
            return False
        return bool(np.array_equal(self.to_numpy(), other.to_numpy()))

    def __hash__(self):
        if self._hash is None:
            dense = np.ascontiguousarray(self.to_numpy(), dtype=np.float64)
            self._hash = hash(("NumericArray", self.shape, dense.tobytes()))
        return self._hash

    def __repr__(self):
        if self.element_count <= 8:
            return "NumericArray(%r)" % (self.to_nested_lists(),)
        return "NumericArray(shape=%r, dtype=%s)" % (
            self.shape, self.element_type
        )

    def n3(self):
        """Turtle-ish rendering using nested collection syntax."""
        def render(value):
            if isinstance(value, list):
                return "(" + " ".join(render(v) for v in value) + ")"
            return repr(value)
        return render(self.to_nested_lists())

    # -- constructors ----------------------------------------------------------

    @staticmethod
    def zeros(shape, dtype=np.float64):
        return NumericArray(np.zeros(shape, dtype=dtype))

    @staticmethod
    def from_flat(flat, shape, dtype=None):
        dense = np.asarray(flat, dtype=dtype).reshape(shape)
        return NumericArray(dense)
