"""Numeric multidimensional arrays (NMAs) and lazy array proxies.

This subpackage implements the array side of the *RDF with Arrays* model:

- :class:`NumericArray` — a resident array: a linear buffer plus a
  descriptor (shape / strides / offset), so slicing, projection and
  transposition are O(1) descriptor derivations that never copy elements
  (dissertation section 5.2).
- :class:`ArrayProxy` — the same descriptor over an array whose elements
  live in an external storage back-end; contents are fetched lazily by the
  array-proxy-resolve (APR) machinery in :mod:`repro.storage`.
- :mod:`repro.arrays.ops` — array arithmetic, aggregates, and the
  second-order array-algebra functions (map / condense / build).
- :mod:`repro.arrays.chunks` — the linear-chunking math shared by all
  storage back-ends.
"""

from repro.arrays.nma import NumericArray, Span, ELEMENT_TYPES
from repro.arrays.proxy import ArrayProxy
from repro.arrays.ops import (
    array_map,
    array_condense,
    array_build,
    array_sum,
    array_avg,
    array_min,
    array_max,
)

__all__ = [
    "NumericArray",
    "Span",
    "ELEMENT_TYPES",
    "ArrayProxy",
    "array_map",
    "array_condense",
    "array_build",
    "array_sum",
    "array_avg",
    "array_min",
    "array_max",
]
