"""Linear chunking of array buffers.

SSDM partitions each stored array's linearized buffer into equal-size
one-dimensional chunks — deliberately simpler than Rasdaman-style
dimension-aligned tiles: the chunk size is the single tuning parameter, and
access *regularity is discovered at query run time* by the Sequence Pattern
Detector instead of being designed into the tiling (dissertation section
2.5, 6.2).  This module holds the arithmetic shared by every back-end.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.exceptions import StorageError

#: Default chunk size used by the storage back-ends, in bytes.
DEFAULT_CHUNK_BYTES = 8192


class ChunkLayout:
    """Chunking geometry of one stored array.

    >>> layout = ChunkLayout(element_count=10, itemsize=8, chunk_bytes=32)
    >>> layout.elements_per_chunk
    4
    >>> layout.chunk_count
    3
    """

    __slots__ = ("element_count", "itemsize", "chunk_bytes",
                 "elements_per_chunk", "chunk_count")

    def __init__(self, element_count, itemsize, chunk_bytes=DEFAULT_CHUNK_BYTES):
        if chunk_bytes < itemsize:
            raise StorageError(
                "chunk size %d smaller than element size %d"
                % (chunk_bytes, itemsize)
            )
        self.element_count = int(element_count)
        self.itemsize = int(itemsize)
        self.chunk_bytes = int(chunk_bytes)
        self.elements_per_chunk = self.chunk_bytes // self.itemsize
        if self.element_count == 0:
            self.chunk_count = 0
        else:
            self.chunk_count = -(-self.element_count
                                 // self.elements_per_chunk)

    def chunk_of(self, linear_index):
        """The chunk id containing a linear element index."""
        return linear_index // self.elements_per_chunk

    def chunk_extent(self, chunk_id):
        """Number of valid elements in a chunk (the last may be short)."""
        start = chunk_id * self.elements_per_chunk
        if start >= self.element_count:
            return 0
        return min(self.elements_per_chunk, self.element_count - start)

    def chunk_slices(self):
        """Iterate (chunk_id, start_element, element_count) over the array."""
        for chunk_id in range(self.chunk_count):
            start = chunk_id * self.elements_per_chunk
            yield chunk_id, start, self.chunk_extent(chunk_id)


def linear_indices_of_runs(runs):
    """Flatten (start, step, count) runs into one int64 index vector,
    in row-major visit order."""
    pieces = []
    for start, step, count in runs:
        pieces.append(start + step * np.arange(count, dtype=np.int64))
    if not pieces:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(pieces)


def chunks_of_runs(runs, elements_per_chunk):
    """The ordered list of distinct chunk ids a set of runs touches.

    The order is first-touch order (the order APR would request them in),
    which is what the Sequence Pattern Detector analyses.
    """
    seen = set()
    ordered = []
    for start, step, count in runs:
        if count <= 0:
            continue
        if step == 0:
            step_eff, count_eff = 1, 1
        else:
            step_eff, count_eff = step, count
        # walk chunk boundaries without enumerating every element
        position = start
        last = start + step_eff * (count_eff - 1)
        while position <= last:
            chunk_id = position // elements_per_chunk
            if chunk_id not in seen:
                seen.add(chunk_id)
                ordered.append(chunk_id)
            # jump to the first element of the run in the next chunk
            next_boundary = (chunk_id + 1) * elements_per_chunk
            if step_eff >= elements_per_chunk:
                position += step_eff
            else:
                skip = -(-(next_boundary - position) // step_eff)
                position += skip * step_eff
    return ordered


def assemble_from_chunks(indices, chunk_arrays, elements_per_chunk, dtype):
    """Gather buffer elements at ``indices`` out of fetched chunks.

    ``chunk_arrays`` maps chunk id -> 1-D numpy array of that chunk's
    elements.  Returns a 1-D numpy array aligned with ``indices``.
    """
    out = np.empty(len(indices), dtype=dtype)
    if len(indices) == 0:
        return out
    chunk_ids = indices // elements_per_chunk
    offsets = indices - chunk_ids * elements_per_chunk
    for chunk_id in np.unique(chunk_ids):
        chunk = chunk_arrays.get(int(chunk_id))
        if chunk is None:
            raise StorageError("chunk %d was not fetched" % chunk_id)
        mask = chunk_ids == chunk_id
        out[mask] = chunk[offsets[mask]]
    return out
