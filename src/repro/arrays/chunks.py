"""Linear chunking of array buffers.

SSDM partitions each stored array's linearized buffer into equal-size
one-dimensional chunks — deliberately simpler than Rasdaman-style
dimension-aligned tiles: the chunk size is the single tuning parameter, and
access *regularity is discovered at query run time* by the Sequence Pattern
Detector instead of being designed into the tiling (dissertation section
2.5, 6.2).  This module holds the arithmetic shared by every back-end.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.exceptions import StorageError

#: Default chunk size used by the storage back-ends, in bytes.
DEFAULT_CHUNK_BYTES = 8192


class ChunkLayout:
    """Chunking geometry of one stored array.

    >>> layout = ChunkLayout(element_count=10, itemsize=8, chunk_bytes=32)
    >>> layout.elements_per_chunk
    4
    >>> layout.chunk_count
    3
    """

    __slots__ = ("element_count", "itemsize", "chunk_bytes",
                 "elements_per_chunk", "chunk_count")

    def __init__(self, element_count, itemsize, chunk_bytes=DEFAULT_CHUNK_BYTES):
        if chunk_bytes < itemsize:
            raise StorageError(
                "chunk size %d smaller than element size %d"
                % (chunk_bytes, itemsize)
            )
        self.element_count = int(element_count)
        self.itemsize = int(itemsize)
        self.chunk_bytes = int(chunk_bytes)
        self.elements_per_chunk = self.chunk_bytes // self.itemsize
        if self.element_count == 0:
            self.chunk_count = 0
        else:
            self.chunk_count = -(-self.element_count
                                 // self.elements_per_chunk)

    def chunk_of(self, linear_index):
        """The chunk id containing a linear element index."""
        return linear_index // self.elements_per_chunk

    def chunk_extent(self, chunk_id):
        """Number of valid elements in a chunk (the last may be short)."""
        start = chunk_id * self.elements_per_chunk
        if start >= self.element_count:
            return 0
        return min(self.elements_per_chunk, self.element_count - start)

    def chunk_slices(self):
        """Iterate (chunk_id, start_element, element_count) over the array."""
        for chunk_id in range(self.chunk_count):
            start = chunk_id * self.elements_per_chunk
            yield chunk_id, start, self.chunk_extent(chunk_id)


def linear_indices_of_runs(runs):
    """Flatten (start, step, count) runs into one int64 index vector,
    in row-major visit order."""
    runs = [run for run in runs if run[2] > 0]
    if not runs:
        return np.empty(0, dtype=np.int64)
    if len(runs) == 1:
        start, step, count = runs[0]
        return start + step * np.arange(count, dtype=np.int64)
    # One vectorized pass instead of an arange per run: position within
    # the output minus the first position of its run gives the ramp.
    starts = np.array([r[0] for r in runs], dtype=np.int64)
    steps = np.array([r[1] for r in runs], dtype=np.int64)
    counts = np.array([r[2] for r in runs], dtype=np.int64)
    ends = np.cumsum(counts)
    ramp = np.arange(ends[-1], dtype=np.int64) \
        - np.repeat(ends - counts, counts)
    return np.repeat(starts, counts) + np.repeat(steps, counts) * ramp


def chunks_of_runs(runs, elements_per_chunk):
    """The ordered list of distinct chunk ids a set of runs touches.

    The order is first-touch order (the order APR would request them in),
    which is what the Sequence Pattern Detector analyses.
    """
    seen = set()
    ordered = []
    for start, step, count in runs:
        if count <= 0:
            continue
        if step == 0:
            step_eff, count_eff = 1, 1
        else:
            step_eff, count_eff = step, count
        # walk chunk boundaries without enumerating every element
        position = start
        last = start + step_eff * (count_eff - 1)
        while position <= last:
            chunk_id = position // elements_per_chunk
            if chunk_id not in seen:
                seen.add(chunk_id)
                ordered.append(chunk_id)
            # jump to the first element of the run in the next chunk
            next_boundary = (chunk_id + 1) * elements_per_chunk
            if step_eff >= elements_per_chunk:
                position += step_eff
            else:
                skip = -(-(next_boundary - position) // step_eff)
                position += skip * step_eff
    return ordered


def assemble_from_chunks(indices, chunk_arrays, elements_per_chunk, dtype):
    """Gather buffer elements at ``indices`` out of fetched chunks.

    ``chunk_arrays`` maps chunk id -> 1-D numpy array of that chunk's
    elements.  Returns a 1-D numpy array aligned with ``indices``.
    """
    out = np.empty(len(indices), dtype=dtype)
    if len(indices) == 0:
        return out
    chunk_ids = indices // elements_per_chunk
    offsets = indices - chunk_ids * elements_per_chunk
    if len(indices) <= 4:
        # Tiny gathers (point accesses) would be dominated by the
        # vectorized path's setup; look elements up directly.
        for i, (cid, off) in enumerate(zip(chunk_ids.tolist(),
                                           offsets.tolist())):
            chunk = chunk_arrays.get(cid)
            if chunk is None:
                raise StorageError("chunk %d was not fetched" % cid)
            out[i] = chunk[off]
        return out
    # Concatenate the fetched chunks once and gather with a single fancy
    # index — O(n log c) instead of a boolean mask per chunk (O(n * c)).
    ids = sorted(chunk_arrays)
    pieces = [chunk_arrays[cid] for cid in ids]
    ids = np.asarray(ids, dtype=np.int64)
    starts = np.zeros(len(pieces), dtype=np.int64)
    np.cumsum([len(p) for p in pieces[:-1]], out=starts[1:])
    rank = np.searchsorted(ids, chunk_ids)
    if rank.size and (
        rank.max() >= len(ids)
        or not np.array_equal(ids[np.minimum(rank, len(ids) - 1)],
                              chunk_ids)
    ):
        missing = set(chunk_ids.tolist()) - set(ids.tolist())
        raise StorageError(
            "chunk %d was not fetched" % min(missing)
        )
    base = np.concatenate(pieces) if len(pieces) > 1 else pieces[0]
    out[:] = base[starts[rank] + offsets]
    return out
