"""Sorted permutation indexes over dictionary-encoded triples.

A :class:`PermutationIndex` stores one ordering (SPO, POS, or OSP) of a
graph's triples as three parallel contiguous ``int64`` numpy columns,
kept lexicographically sorted.  Any triple pattern whose constants form
a prefix of the ordering resolves to one contiguous *run* by binary
search; the three classical permutations together cover every bound
combination with a prefix:

    ===========  =========  ==========
    bound        index      prefix
    ===========  =========  ==========
    s / sp /spo  SPO        s, sp, spo
    p / po       POS        p, po
    o / os       OSP        o, os
    (none)       SPO        whole
    ===========  =========  ==========

Maintenance is batched: the owning :class:`~repro.rdf.graph.Graph`
buffers single-triple adds/removes as a pending delta and merges them
into the sorted base in one vectorized pass (:meth:`merge`) once the
delta grows past a threshold, so point updates stay O(1) amortized
while reads see fully sorted arrays.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

_EMPTY = np.empty(0, dtype=np.int64)


class PermutationIndex:
    """One sorted permutation (component order) of an ID triple table.

    ``perm`` maps storage columns to logical SPO components: column i of
    this index holds component ``perm[i]`` of each triple.  POS is
    ``(1, 2, 0)`` — column 0 holds predicates, column 1 values, column 2
    subjects.
    """

    __slots__ = ("perm", "c0", "c1", "c2")

    def __init__(self, perm):
        self.perm = tuple(perm)
        self.c0 = _EMPTY
        self.c1 = _EMPTY
        self.c2 = _EMPTY

    def __len__(self):
        return len(self.c0)

    @property
    def nbytes(self):
        return self.c0.nbytes + self.c1.nbytes + self.c2.nbytes

    # -- maintenance --------------------------------------------------------------
    #
    # Maintenance NEVER mutates the column arrays of a published index
    # in place: :meth:`merged` and :meth:`remapped` build a brand-new
    # instance that the owning Graph swaps in with a single reference
    # assignment (publish-then-swap).  A concurrent reader that picked
    # up the old instance mid-``run_bounds`` keeps seeing a fully
    # consistent sorted base — the race that an in-place merge under a
    # global lock used to mask.

    def merged(self, add_rows, delete_mask=None):
        """A NEW index: the kept base rows plus a batch, re-sorted.

        ``add_rows`` is an ``(m, 3)`` array in **logical SPO** order (may
        be empty); ``delete_mask`` a boolean keep-mask over the current
        base (True = keep).  ``self`` is left untouched.
        """
        p0, p1, p2 = self.perm
        c0, c1, c2 = self.c0, self.c1, self.c2
        if delete_mask is not None:
            c0 = c0[delete_mask]
            c1 = c1[delete_mask]
            c2 = c2[delete_mask]
        if add_rows is not None and len(add_rows):
            c0 = np.concatenate([c0, add_rows[:, p0]])
            c1 = np.concatenate([c1, add_rows[:, p1]])
            c2 = np.concatenate([c2, add_rows[:, p2]])
        if len(c0):
            order = np.lexsort((c2, c1, c0))
            c0 = np.ascontiguousarray(c0[order])
            c1 = np.ascontiguousarray(c1[order])
            c2 = np.ascontiguousarray(c2[order])
        fresh = PermutationIndex(self.perm)
        fresh.c0, fresh.c1, fresh.c2 = c0, c1, c2
        return fresh

    def merge(self, add_rows, delete_mask=None):
        """In-place variant of :meth:`merged` (single-owner indexes only)."""
        fresh = self.merged(add_rows, delete_mask)
        self.c0, self.c1, self.c2 = fresh.c0, fresh.c1, fresh.c2

    def remapped(self, mapping):
        """A NEW index with every ID rewritten through ``mapping``.

        Used by dictionary compaction: ``mapping[old_id] -> new_id``;
        ``self`` (possibly pinned by a snapshot) is left untouched.
        """
        fresh = PermutationIndex(self.perm)
        if not len(self.c0):
            return fresh
        c0 = mapping[self.c0]
        c1 = mapping[self.c1]
        c2 = mapping[self.c2]
        order = np.lexsort((c2, c1, c0))
        fresh.c0 = np.ascontiguousarray(c0[order])
        fresh.c1 = np.ascontiguousarray(c1[order])
        fresh.c2 = np.ascontiguousarray(c2[order])
        return fresh

    def remap(self, mapping):
        """In-place variant of :meth:`remapped` (single-owner indexes only)."""
        fresh = self.remapped(mapping)
        self.c0, self.c1, self.c2 = fresh.c0, fresh.c1, fresh.c2

    # -- lookups ------------------------------------------------------------------

    def run_bounds(self, prefix) -> Tuple[int, int]:
        """The ``[lo, hi)`` run whose leading columns equal ``prefix``.

        ``prefix`` holds 0–3 IDs in this index's component order; binary
        search narrows one column at a time, so the cost is
        O(len(prefix) · log n).
        """
        lo, hi = 0, len(self.c0)
        for column, bound in zip((self.c0, self.c1, self.c2), prefix):
            segment = column[lo:hi]
            lo, hi = (
                lo + int(np.searchsorted(segment, bound, "left")),
                lo + int(np.searchsorted(segment, bound, "right")),
            )
            if lo >= hi:
                return lo, lo
        return lo, hi

    def find_row(self, row_spo) -> int:
        """Position of one logical-SPO row, or -1 when absent."""
        prefix = (row_spo[self.perm[0]], row_spo[self.perm[1]],
                  row_spo[self.perm[2]])
        lo, hi = self.run_bounds(prefix)
        return lo if lo < hi else -1

    def logical_columns(self, lo, hi):
        """``(s, p, o)`` column views of the run ``[lo, hi)``."""
        by_storage = (self.c0[lo:hi], self.c1[lo:hi], self.c2[lo:hi])
        logical = [None, None, None]
        for storage_pos, component in enumerate(self.perm):
            logical[component] = by_storage[storage_pos]
        return tuple(logical)

    def iter_rows(self, lo, hi):
        """Iterate logical ``(s, p, o)`` tuples of the run ``[lo, hi)``."""
        s_col, p_col, o_col = self.logical_columns(lo, hi)
        return zip(s_col.tolist(), p_col.tolist(), o_col.tolist())
