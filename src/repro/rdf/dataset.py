"""An RDF dataset: a default graph plus named graphs.

SPARQL queries address the default graph unless a ``GRAPH`` pattern or
``FROM NAMED`` clause selects a named graph (dissertation section 3.3.4).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.rdf.dictionary import TermDictionary
from repro.rdf.graph import Graph
from repro.rdf.term import URI


class Dataset:
    """A collection of graphs queried together.

    All member graphs share one :class:`TermDictionary`, so a term has
    the same integer ID in every graph and the journal can persist a
    single assignment stream for the whole dataset.

    >>> ds = Dataset()
    >>> g = ds.graph(URI("http://example.org/g1"))
    >>> ds.default_graph is ds.graph(None)
    True
    """

    def __init__(self):
        self.term_dictionary = TermDictionary()
        self.default_graph = Graph(dictionary=self.term_dictionary)
        self._named: Dict[URI, Graph] = {}

    def graph(self, name=None, create=True):
        """Return the graph with the given name (None = default graph).

        Unknown names create an empty graph unless ``create`` is False,
        in which case None is returned.
        """
        if name is None:
            return self.default_graph
        if isinstance(name, str):
            name = URI(name)
        existing = self._named.get(name)
        if existing is None and create:
            existing = self._named[name] = Graph(
                name=name, dictionary=self.term_dictionary
            )
        return existing

    def named_graphs(self):
        return dict(self._named)

    def drop(self, name):
        """Remove a named graph entirely; returns True when it existed."""
        if isinstance(name, str):
            name = URI(name)
        return self._named.pop(name, None) is not None

    def union_triples(self, subject=None, prop=None, value=None):
        """Iterate matches across the default and all named graphs."""
        yield from self.default_graph.triples(subject, prop, value)
        for graph in self._named.values():
            yield from graph.triples(subject, prop, value)

    def __len__(self):
        return len(self.default_graph) + sum(
            len(g) for g in self._named.values()
        )

    def compact_dictionary(self, fresh: TermDictionary):
        """Swap in a compacted dictionary, remapping every graph.

        Dictionary IDs are append-only, so deletes and snapshots leave
        dead assignments behind; the journal's :meth:`snapshot` builds
        ``fresh`` holding only live terms (in snapshot-record order) and
        calls this to rewrite all graph indexes and statistics through
        ``old id -> new id``.  Keeps the invariant that the in-memory
        dictionary equals what a fresh replay of the log reconstructs.
        """
        old = self.term_dictionary
        mapping = np.full(max(len(old), 1), -1, dtype=np.int64)
        for new_id, term in enumerate(fresh.term_list()):
            mapping[old.try_encode(term)] = new_id
        for graph in (self.default_graph, *self._named.values()):
            graph._remap_ids(mapping, fresh)
        self.term_dictionary = fresh
