"""An RDF dataset: a default graph plus named graphs.

SPARQL queries address the default graph unless a ``GRAPH`` pattern or
``FROM NAMED`` clause selects a named graph (dissertation section 3.3.4).

The dataset is also the MVCC publication point: the single writer calls
:meth:`Dataset.publish` at every WAL-record boundary to install an
immutable :class:`~repro.mvcc.DatasetVersion` (per-graph frozen states,
stamped with the WAL seq) with one reference assignment, and lock-free
readers pick it up through :meth:`Dataset.capture`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Optional

import numpy as np

from repro.mvcc import DatasetVersion
from repro.rdf.dictionary import TermDictionary
from repro.rdf.graph import Graph
from repro.rdf.term import URI


class Dataset:
    """A collection of graphs queried together.

    All member graphs share one :class:`TermDictionary`, so a term has
    the same integer ID in every graph and the journal can persist a
    single assignment stream for the whole dataset.

    >>> ds = Dataset()
    >>> g = ds.graph(URI("http://example.org/g1"))
    >>> ds.default_graph is ds.graph(None)
    True
    """

    def __init__(self):
        self.term_dictionary = TermDictionary()
        self.default_graph = Graph(dictionary=self.term_dictionary)
        self._named: Dict[URI, Graph] = {}
        #: Last published immutable version (readers load this with a
        #: single attribute read — publication is GIL-atomic).
        self._published: Optional[DatasetVersion] = None
        self._publish_lock = threading.Lock()
        self._write_active = False
        self._auto_seq = 0
        #: Optional :class:`~repro.mvcc.SnapshotManager` notified at
        #: every publish (set by SSDM).
        self.snapshots = None
        #: Optional fault plan propagated to member graphs.
        self.faults = None

    def graph(self, name=None, create=True):
        """Return the graph with the given name (None = default graph).

        Unknown names create an empty graph unless ``create`` is False,
        in which case None is returned.
        """
        if name is None:
            return self.default_graph
        if isinstance(name, str):
            name = URI(name)
        existing = self._named.get(name)
        if existing is None and create:
            existing = self._named[name] = Graph(
                name=name, dictionary=self.term_dictionary
            )
            existing.faults = self.faults
        return existing

    def named_graphs(self):
        return dict(self._named)

    def drop(self, name):
        """Remove a named graph entirely; returns True when it existed."""
        if isinstance(name, str):
            name = URI(name)
        return self._named.pop(name, None) is not None

    def union_triples(self, subject=None, prop=None, value=None):
        """Iterate matches across the default and all named graphs."""
        yield from self.default_graph.triples(subject, prop, value)
        for graph in self._named.values():
            yield from graph.triples(subject, prop, value)

    def __len__(self):
        return len(self.default_graph) + sum(
            len(g) for g in self._named.values()
        )

    def set_faults(self, plan):
        """Install a fault plan on the dataset and every member graph."""
        self.faults = plan
        self.default_graph.faults = plan
        for graph in self._named.values():
            graph.faults = plan

    # -- MVCC publication ----------------------------------------------------

    def _graphs(self):
        return (self.default_graph, *self._named.values())

    def _stamp(self):
        """Cheap change detector over every graph and the dictionary.

        Foreign graph implementations mounted as named graphs (SQL
        views, hash oracles) carry no mutation counter; they are not
        versioned either (see :meth:`publish`), so their changes need
        not invalidate the published version.
        """
        return (
            len(self._named),
            len(self.term_dictionary),
            sum(getattr(g, "_mutations", 0) for g in self._graphs()),
        )

    def publish(self, seq=None):
        """Install the current state as the published version.

        Must run on the single writer thread (or under the publish lock
        when no writer is active).  ``seq`` is the WAL seq whose effects
        the version contains; None auto-increments past the last
        published seq (embedded, non-journaled mutation).  Freezing an
        unchanged graph reuses its cached version, so read-mostly
        publishes are O(#graphs).
        """
        if seq is None:
            previous = self._published
            base = previous.seq if previous is not None else 0
            self._auto_seq = max(self._auto_seq, base) + 1
            seq = self._auto_seq
        entries = {}
        for graph in self._graphs():
            freeze = getattr(graph, "freeze", None)
            if freeze is None:
                # a foreign graph implementation (SQL view, oracle)
                # cannot be frozen: snapshots read it live
                continue
            entries[id(graph)] = (graph, freeze())
        version = DatasetVersion(seq, entries, self._stamp())
        faults = self.faults
        if faults is not None:
            faults.at_point("publish")
        self._published = version
        manager = self.snapshots
        if manager is not None:
            manager.note_published(version)
        return version

    def capture(self):
        """The version a new reader should pin — always a consistent
        WAL-record-boundary state, without blocking any writer.

        When the published version is stale and a writer is mid-record,
        readers get the last published version (the state before the
        in-flight record) straight off the fast path.  When it is stale
        with *no* writer active (embedded direct loads), the state is
        published on demand under the publish lock, which writers only
        hold for the flip/publish instants — never for the record body.
        """
        published = self._published
        if published is not None and (
            self._write_active or published.stamp == self._stamp()
        ):
            return published
        with self._publish_lock:
            published = self._published
            if self._write_active and published is not None:
                return published
            if published is None or published.stamp != self._stamp():
                published = self.publish()
            return published

    @property
    def published_seq(self):
        """Seq of the last published version (0 before any publish)."""
        published = self._published
        return published.seq if published is not None else 0

    @contextmanager
    def writing(self, seq):
        """Mark one WAL record's mutations; publishes on exit.

        While active, :meth:`capture` serves the pre-record version
        instead of publishing half-applied state.  The publish lock is
        held only while flipping the flag and while publishing, so the
        record body itself never blocks readers.
        """
        with self._publish_lock:
            self._write_active = True
        try:
            yield
        finally:
            with self._publish_lock:
                try:
                    self.publish(seq)
                finally:
                    self._write_active = False

    def compact_dictionary(self, fresh: TermDictionary):
        """Swap in a compacted dictionary, remapping every graph.

        Dictionary IDs are append-only, so deletes and snapshots leave
        dead assignments behind; the journal's :meth:`snapshot` builds
        ``fresh`` holding only live terms (in snapshot-record order) and
        calls this to rewrite all graph indexes and statistics through
        ``old id -> new id``.  Keeps the invariant that the in-memory
        dictionary equals what a fresh replay of the log reconstructs.
        """
        old = self.term_dictionary
        mapping = np.full(max(len(old), 1), -1, dtype=np.int64)
        for new_id, term in enumerate(fresh.term_list()):
            mapping[old.try_encode(term)] = new_id
        for graph in self._graphs():
            graph._remap_ids(mapping, fresh)
        self.term_dictionary = fresh
