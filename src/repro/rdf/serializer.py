"""Turtle serialization of graphs (with array values).

The inverse of :mod:`repro.loaders.turtle`: triples group by subject with
``;`` / ``,`` shorthand, known namespaces abbreviate to prefixes, and
NumericArray values render as nested collections — which the loader reads
back and re-consolidates, so serialize/load round-trips RDF with Arrays.
Array proxies are resolved before serialization (text formats have no
notion of external storage).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.arrays.nma import NumericArray
from repro.arrays.proxy import ArrayProxy
from repro.rdf.namespace import WELL_KNOWN_PREFIXES
from repro.rdf.term import BlankNode, Literal, URI, term_key


def serialize_turtle(graph, prefixes=None):
    """Serialize a graph to Turtle text.

    ``prefixes`` maps prefix names to namespace bases; the well-known
    prefixes are always available.  Only prefixes actually used appear
    in the output's @prefix header.
    """
    table = dict(WELL_KNOWN_PREFIXES)
    if prefixes:
        table.update(prefixes)
    # longest-base-first so the most specific prefix wins
    ordered = sorted(table.items(), key=lambda kv: -len(kv[1]))
    used: Dict[str, str] = {}

    def shorten(uri):
        for prefix, base in ordered:
            if uri.value.startswith(base):
                local = uri.value[len(base):]
                if local and all(
                    ch.isalnum() or ch in "_-" for ch in local
                ):
                    used[prefix] = base
                    return "%s:%s" % (prefix, local)
        return uri.n3()

    def render(value):
        if isinstance(value, URI):
            return shorten(value)
        if isinstance(value, BlankNode):
            return value.n3()
        if isinstance(value, Literal):
            return value.n3()
        if isinstance(value, ArrayProxy):
            value = value.resolve()
        if isinstance(value, NumericArray):
            return value.n3()
        raise TypeError("cannot serialize %r" % (value,))

    body_lines: List[str] = []
    subjects = sorted(
        {t.subject for t in graph.triples()}, key=term_key
    )
    for subject in subjects:
        by_property: Dict[object, List[object]] = {}
        for triple in graph.triples(subject):
            by_property.setdefault(triple.property, []).append(
                triple.value
            )
        chunks = []
        for prop in sorted(by_property, key=term_key):
            values = sorted(
                (render(v) for v in by_property[prop])
            )
            prop_text = ("a" if prop.value ==
                         "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
                         else render(prop))
            chunks.append("%s %s" % (prop_text, " , ".join(values)))
        body_lines.append(
            "%s %s ." % (render(subject), " ;\n    ".join(chunks))
        )

    header = [
        "@prefix %s: <%s> ." % (prefix, base)
        for prefix, base in sorted(used.items())
    ]
    parts = header + [""] + body_lines if header else body_lines
    return "\n".join(parts) + ("\n" if body_lines else "")
