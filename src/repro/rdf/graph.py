"""In-memory RDF graph with three-way indexing and statistics.

The store keeps the classical SPO / POS / OSP index triplet so any triple
pattern with at least one bound component is answered by hash lookups, the
strategy used by main-memory RDF stores including SSDM's host system
(dissertation section 2.2.3).  Per-property cardinality statistics are
maintained incrementally and feed the cost-based optimizer
(:mod:`repro.algebra.cost`).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Set

from repro.exceptions import SciSparqlError
from repro.rdf.term import BlankNode, Literal, Triple, URI, is_term


class GraphStatistics:
    """Cardinality statistics used for query optimization.

    Tracks, per property URI: the number of triples, and the number of
    distinct subjects and values, enabling selectivity estimates for each
    access direction of a triple-pattern predicate.
    """

    def __init__(self, graph):
        self._graph = graph

    @property
    def triple_count(self):
        return len(self._graph)

    def property_count(self, prop):
        """Number of triples with the given property."""
        index = self._graph._pos.get(prop)
        if index is None:
            return 0
        return sum(len(subjects) for subjects in index.values())

    def distinct_subjects(self, prop=None):
        if prop is None:
            return len(self._graph._spo)
        index = self._graph._pos.get(prop)
        if index is None:
            return 0
        subjects = set()
        for subject_set in index.values():
            subjects.update(subject_set)
        return len(subjects)

    def distinct_values(self, prop=None):
        if prop is None:
            return len(self._graph._osp)
        index = self._graph._pos.get(prop)
        if index is None:
            return 0
        return len(index)

    def fanout(self, prop):
        """Average number of values per subject for a property.

        Estimates the cardinality of following the property *forward* from
        a known subject; 1.0 when the property is unknown.
        """
        count = self.property_count(prop)
        subjects = self.distinct_subjects(prop)
        if subjects == 0:
            return 1.0
        return count / subjects

    def fanin(self, prop):
        """Average number of subjects per value (backward direction)."""
        count = self.property_count(prop)
        values = self.distinct_values(prop)
        if values == 0:
            return 1.0
        return count / values


class Graph:
    """A mutable set of RDF triples with hash indexes on all access paths.

    Values may be RDF terms, :class:`repro.arrays.NumericArray` instances,
    or :class:`repro.arrays.ArrayProxy` references — the *RDF with Arrays*
    model.

    >>> g = Graph()
    >>> from repro.rdf import URI, Literal
    >>> _ = g.add(URI("ex:s"), URI("ex:p"), Literal(1))
    >>> len(g)
    1
    """

    def __init__(self, name=None):
        #: Optional graph URI (named graphs in a Dataset).
        self.name = name
        self._spo: Dict[object, Dict[object, Set[object]]] = {}
        self._pos: Dict[object, Dict[object, Set[object]]] = {}
        self._osp: Dict[object, Dict[object, Set[object]]] = {}
        self._size = 0
        self.statistics = GraphStatistics(self)

    def __len__(self):
        return self._size

    def __iter__(self):
        return self.triples()

    def __contains__(self, triple):
        subject, prop, value = triple
        values = self._spo.get(subject, {}).get(prop)
        return values is not None and value in values

    def add(self, subject, prop, value):
        """Insert one triple; returns self for chaining.

        Duplicate insertions are silently ignored (a graph is a set).
        """
        self._validate(subject, prop, value)
        if self._insert(self._spo, subject, prop, value):
            self._insert(self._pos, prop, value, subject)
            self._insert(self._osp, value, subject, prop)
            self._size += 1
        return self

    def add_triple(self, triple):
        return self.add(triple[0], triple[1], triple[2])

    def remove(self, subject, prop, value):
        """Remove one triple; returns True when it was present."""
        if not self._delete(self._spo, subject, prop, value):
            return False
        self._delete(self._pos, prop, value, subject)
        self._delete(self._osp, value, subject, prop)
        self._size -= 1
        return True

    def remove_matching(self, subject=None, prop=None, value=None):
        """Remove every triple matching the pattern; returns the count."""
        doomed = list(self.triples(subject, prop, value))
        for triple in doomed:
            self.remove(*triple)
        return len(doomed)

    def clear(self):
        self._spo.clear()
        self._pos.clear()
        self._osp.clear()
        self._size = 0

    def triples(self, subject=None, prop=None, value=None) -> Iterator[Triple]:
        """Iterate triples matching a pattern (None = wildcard).

        Chooses the index whose bound prefix is longest, so every lookup
        with at least one constant avoids a full scan.
        """
        if subject is not None:
            by_prop = self._spo.get(subject)
            if by_prop is None:
                return
            if prop is not None:
                values = by_prop.get(prop)
                if values is None:
                    return
                if value is not None:
                    if value in values:
                        yield Triple(subject, prop, value)
                    return
                for each in values:
                    yield Triple(subject, prop, each)
                return
            for each_prop, values in by_prop.items():
                if value is not None:
                    if value in values:
                        yield Triple(subject, each_prop, value)
                    continue
                for each in values:
                    yield Triple(subject, each_prop, each)
            return
        if prop is not None:
            by_value = self._pos.get(prop)
            if by_value is None:
                return
            if value is not None:
                for each_subject in by_value.get(value, ()):
                    yield Triple(each_subject, prop, value)
                return
            for each_value, subjects in by_value.items():
                for each_subject in subjects:
                    yield Triple(each_subject, prop, each_value)
            return
        if value is not None:
            by_subject = self._osp.get(value)
            if by_subject is None:
                return
            for each_subject, props in by_subject.items():
                for each_prop in props:
                    yield Triple(each_subject, each_prop, value)
            return
        for each_subject, by_prop in self._spo.items():
            for each_prop, values in by_prop.items():
                for each_value in values:
                    yield Triple(each_subject, each_prop, each_value)

    def count(self, subject=None, prop=None, value=None):
        """Number of triples matching the pattern, cheaper than listing
        when only the fully-wild or property-bound cases are needed."""
        if subject is None and prop is None and value is None:
            return self._size
        if subject is None and value is None:
            return self.statistics.property_count(prop)
        return sum(1 for _ in self.triples(subject, prop, value))

    # -- convenience accessors -------------------------------------------

    def subjects(self, prop=None, value=None):
        seen = set()
        for triple in self.triples(None, prop, value):
            if triple.subject not in seen:
                seen.add(triple.subject)
                yield triple.subject

    def values(self, subject=None, prop=None):
        for triple in self.triples(subject, prop, None):
            yield triple.value

    def value(self, subject, prop, default=None):
        """The single value of (subject, prop), or default when absent."""
        for triple in self.triples(subject, prop, None):
            return triple.value
        return default

    def properties(self, subject):
        by_prop = self._spo.get(subject, {})
        return iter(by_prop.keys())

    def update(self, triples):
        """Bulk-insert an iterable of triples; returns self."""
        for triple in triples:
            self.add(triple[0], triple[1], triple[2])
        return self

    def copy(self):
        clone = Graph(name=self.name)
        clone.update(self.triples())
        return clone

    # -- serialization ----------------------------------------------------

    def to_ntriples(self):
        """Serialize as NTriples text (arrays via their reader syntax)."""
        return "\n".join(t.n3() for t in sorted(
            self.triples(), key=lambda t: t.n3())) + ("\n" if self._size else "")

    def to_turtle(self, prefixes=None):
        """Serialize as Turtle text; see :func:`repro.rdf.serializer`."""
        from repro.rdf.serializer import serialize_turtle
        return serialize_turtle(self, prefixes=prefixes)

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _validate(subject, prop, value):
        if not isinstance(subject, (URI, BlankNode)):
            raise SciSparqlError(
                "triple subject must be URI or BlankNode, got %r" % (subject,)
            )
        if not isinstance(prop, URI):
            raise SciSparqlError(
                "triple property must be URI, got %r" % (prop,)
            )
        if not is_term(value):
            raise SciSparqlError(
                "triple value must be an RDF term or array, got %r" % (value,)
            )

    @staticmethod
    def _insert(index, a, b, c):
        by_b = index.get(a)
        if by_b is None:
            by_b = index[a] = {}
        cs = by_b.get(b)
        if cs is None:
            cs = by_b[b] = set()
        if c in cs:
            return False
        cs.add(c)
        return True

    @staticmethod
    def _delete(index, a, b, c):
        by_b = index.get(a)
        if by_b is None:
            return False
        cs = by_b.get(b)
        if cs is None or c not in cs:
            return False
        cs.remove(c)
        if not cs:
            del by_b[b]
            if not by_b:
                del index[a]
        return True
