"""In-memory RDF graph over dictionary-encoded sorted permutation indexes.

Terms are interned into dense integer IDs by a
:class:`~repro.rdf.dictionary.TermDictionary` at add time, and the
triple set is held as three sorted ``int64`` permutation indexes
(SPO / POS / OSP, :mod:`repro.rdf.idindex`) — the representation
full-in-memory RDF engines use to get binary-searchable runs and
merge-joinable columns instead of per-object hash probes.  Any triple
pattern with at least one bound component resolves to one contiguous
run of one index.

Point updates stay cheap through a **pending delta**: single adds and
removes buffer in Python structures and merge into the sorted base in
one vectorized pass once the delta grows past an adaptive threshold.
Consolidation is *publish-then-swap*: the merge builds brand-new
:class:`~repro.rdf.idindex.PermutationIndex` instances and installs
them with one reference assignment, so a concurrent reader holding the
old base mid-``run_bounds`` never observes a half-merged index.

**MVCC versions.**  :meth:`Graph.freeze` captures the current logical
state as an immutable :class:`GraphVersion` — the shared sorted base
plus a copy of the pending overlay and the dictionary watermark — in
O(overlay).  The single writer publishes one per WAL record
(:meth:`~repro.rdf.dataset.Dataset.publish`); lock-free readers resolve
patterns against their pinned version, merging its overlay on the fly.
When an ambient MVCC snapshot is installed
(:func:`repro.mvcc.current_snapshot`), the plain read API
(:meth:`triples`, :meth:`count`, containment) routes through the
snapshot's version automatically.

Per-property cardinality statistics — triple counts and distinct
subject/value counts — are maintained *incrementally* on every
add/remove, so :class:`GraphStatistics` is O(1) reads of counters
rather than recomputed set unions (they feed the cost-based optimizer
on every pattern-ordering pass, :mod:`repro.algebra.cost`).
"""

from __future__ import annotations

from math import isqrt
from typing import Dict, Iterator, Set, Tuple

import numpy as np

from repro.exceptions import SciSparqlError
from repro.mvcc import current_snapshot
from repro.rdf.dictionary import TermDictionary
from repro.rdf.idindex import PermutationIndex
from repro.rdf.term import BlankNode, Literal, Triple, URI, is_term

#: Pending-delta floor before a merge; the in-write threshold grows
#: with the base (``max(floor, n/8)``) so bulk loads amortize to
#: O(n log n), while the publish-time cap grows as ``sqrt(n)`` to
#: balance per-publish overlay copies against merge frequency.
FLUSH_FLOOR = 1024


def _choose_run(idx_spo, idx_pos, idx_osp, s, p, o):
    """The (index, prefix) whose run holds every match of the pattern.

    Every bound scalar lands in the prefix, so run membership and
    "matches the bound scalars" coincide — the overlay arithmetic in
    :class:`GraphVersion` relies on that.
    """
    if s is not None:
        if o is not None and p is None:
            return idx_osp, (o, s)
        if p is not None and o is not None:
            return idx_spo, (s, p, o)
        if p is not None:
            return idx_spo, (s, p)
        return idx_spo, (s,)
    if p is not None:
        return idx_pos, (p, o) if o is not None else (p,)
    if o is not None:
        return idx_osp, (o,)
    return idx_spo, ()


def _matches(row, s, p, o):
    return (s is None or row[0] == s) and \
        (p is None or row[1] == p) and \
        (o is None or row[2] == o)


def _ambient_version(graph):
    """The frozen state of ``graph`` pinned by the ambient snapshot.

    None when no snapshot is installed or the snapshot does not cover
    this graph (query-local merged graphs read live).  Raises
    :class:`~repro.exceptions.SnapshotGoneError` when the snapshot was
    reclaimed.
    """
    snapshot = current_snapshot()
    if snapshot is None:
        return None
    return snapshot.version_of(graph)


class GraphStatistics:
    """Cardinality statistics used for query optimization.

    Every read is O(1) off counters the graph maintains incrementally:
    per property URI, the number of triples and the number of distinct
    subjects and values — the selectivity inputs for each access
    direction of a triple-pattern predicate.
    """

    def __init__(self, graph):
        self._graph = graph

    @property
    def triple_count(self):
        return len(self._graph)

    def property_count(self, prop):
        """Number of triples with the given property."""
        pid = self._graph._dict.try_encode(prop)
        if pid is None:
            return 0
        return self._graph._prop_counts.get(pid, 0)

    def distinct_subjects(self, prop=None):
        if prop is None:
            return len(self._graph._subject_counts)
        pid = self._graph._dict.try_encode(prop)
        if pid is None:
            return 0
        return len(self._graph._prop_subjects.get(pid, ()))

    def distinct_values(self, prop=None):
        if prop is None:
            return len(self._graph._value_counts)
        pid = self._graph._dict.try_encode(prop)
        if pid is None:
            return 0
        return len(self._graph._prop_values.get(pid, ()))

    def fanout(self, prop):
        """Average number of values per subject for a property.

        Estimates the cardinality of following the property *forward*
        from a known subject; 1.0 when the property is unknown.
        """
        count = self.property_count(prop)
        subjects = self.distinct_subjects(prop)
        if subjects == 0:
            return 1.0
        return count / subjects

    def fanin(self, prop):
        """Average number of subjects per value (backward direction)."""
        count = self.property_count(prop)
        values = self.distinct_values(prop)
        if values == 0:
            return 1.0
        return count / values


class GraphVersion:
    """One immutable logical state of a :class:`Graph`.

    Shares the sorted permutation indexes with the graph (indexes are
    never mutated in place — consolidation swaps new instances) and
    owns a *copy* of the pending overlay, so the capture cost is
    O(overlay), bounded by the publish cap.  Also pins the dictionary
    reference and its length at capture time: IDs at or above
    ``term_limit`` were interned after this version and are invisible,
    which is what makes dictionary interning append-only-visible-by-seq.
    """

    __slots__ = ("graph", "indexes", "adds_rows", "adds_arr", "adds_set",
                 "dels", "size", "dictionary", "term_limit")

    #: Same engine fast-path marker as Graph — a version answers the
    #: identical ID-space read API.
    supports_id_space = True

    def __init__(self, graph):
        self.graph = graph
        self.indexes = (graph._idx_spo, graph._idx_pos, graph._idx_osp)
        self.adds_rows = tuple(graph._pending_add)
        self.adds_set = frozenset(self.adds_rows)
        self.adds_arr = (
            np.array(self.adds_rows, dtype=np.int64).reshape(-1, 3)
            if self.adds_rows else None
        )
        self.dels = frozenset(graph._pending_del)
        self.size = graph._size
        self.dictionary = graph._dict
        self.term_limit = len(graph._dict)

    def __len__(self):
        return self.size

    def try_encode(self, term):
        """The term's ID when it was interned *before* this version."""
        tid = self.dictionary.try_encode(term)
        if tid is None or tid >= self.term_limit:
            return None
        return tid

    def term_list(self):
        """Decode table; every ID stored in this version is below
        ``term_limit`` and the dictionary is append-only, so indexing
        the live list is race-free."""
        return self.dictionary.term_list()

    # -- ID-space reads (mirror Graph's private API) --------------------

    def _run_arrays(self, s=None, p=None, o=None):
        """Sorted-run column views with the overlay merged in.

        Same contract as :meth:`Graph._run_arrays`: returns
        ``(s_col, p_col, o_col, leading_free)`` where the run is sorted
        by the chosen index's storage order (deleted base rows masked
        out, overlay adds merged in by lexsort), so merge joins keep
        their sortedness invariant on ``leading_free``.
        """
        index, prefix = _choose_run(*self.indexes, s, p, o)
        lo, hi = index.run_bounds(prefix)
        s_col, p_col, o_col = index.logical_columns(lo, hi)
        leading_free = (
            index.perm[len(prefix)] if len(prefix) < 3 else None
        )
        if self.dels and hi > lo:
            keep = None
            for row in self.dels:
                if not _matches(row, s, p, o):
                    continue
                position = index.find_row(row)
                if lo <= position < hi:
                    if keep is None:
                        keep = np.ones(hi - lo, dtype=bool)
                    keep[position - lo] = False
            if keep is not None:
                s_col = s_col[keep]
                p_col = p_col[keep]
                o_col = o_col[keep]
        if self.adds_arr is not None:
            arr = self.adds_arr
            mask = np.ones(len(arr), dtype=bool)
            if s is not None:
                mask &= arr[:, 0] == s
            if p is not None:
                mask &= arr[:, 1] == p
            if o is not None:
                mask &= arr[:, 2] == o
            if mask.any():
                extra = arr[mask]
                logical = (
                    np.concatenate([s_col, extra[:, 0]]),
                    np.concatenate([p_col, extra[:, 1]]),
                    np.concatenate([o_col, extra[:, 2]]),
                )
                p0, p1, p2 = index.perm
                order = np.lexsort(
                    (logical[p2], logical[p1], logical[p0])
                )
                s_col = logical[0][order]
                p_col = logical[1][order]
                o_col = logical[2][order]
        return s_col, p_col, o_col, leading_free

    def _scan_ids(self, s=None, p=None, o=None):
        """Yield matching (s, p, o) ID rows at this version."""
        index, prefix = _choose_run(*self.indexes, s, p, o)
        lo, hi = index.run_bounds(prefix)
        deleted = self.dels
        if deleted:
            for row in index.iter_rows(lo, hi):
                if row not in deleted:
                    yield row
        else:
            yield from index.iter_rows(lo, hi)
        for row in self.adds_rows:
            if _matches(row, s, p, o):
                yield row

    def _count_ids(self, s=None, p=None, o=None):
        index, prefix = _choose_run(*self.indexes, s, p, o)
        lo, hi = index.run_bounds(prefix)
        # adds never duplicate base rows and dels are always base rows,
        # so the run length adjusts by plain overlay arithmetic
        count = hi - lo
        for row in self.dels:
            if _matches(row, s, p, o):
                count -= 1
        for row in self.adds_rows:
            if _matches(row, s, p, o):
                count += 1
        return count

    def _contains_row(self, row):
        if row in self.adds_set:
            return True
        if row in self.dels:
            return False
        return self.indexes[0].find_row(row) >= 0

    def triples(self, subject=None, prop=None, value=None):
        """Iterate term-space triples matching a pattern at this version."""
        ids = []
        for term in (subject, prop, value):
            if term is None:
                ids.append(None)
                continue
            tid = self.try_encode(term)
            if tid is None:
                return
            ids.append(tid)
        terms = self.term_list()
        for s, p, o in self._scan_ids(ids[0], ids[1], ids[2]):
            yield Triple(terms[s], terms[p], terms[o])

    def retained_nbytes(self, seen):
        """Bytes this version pins beyond the graph's live state.

        Index arrays count only when they are no longer the owning
        graph's current base; ``seen`` deduplicates shared instances
        across versions/snapshots.
        """
        graph = self.graph
        current = (graph._idx_spo, graph._idx_pos, graph._idx_osp)
        total = 0
        for index in self.indexes:
            if id(index) in seen:
                continue
            seen.add(id(index))
            if all(index is not live for live in current):
                total += index.nbytes
        if id(self) not in seen:
            seen.add(id(self))
            total += 24 * (len(self.adds_rows) + len(self.dels))
        return total


class Graph:
    """A mutable set of RDF triples in dictionary-encoded ID space.

    Values may be RDF terms, :class:`repro.arrays.NumericArray`
    instances, or :class:`repro.arrays.ArrayProxy` references — the
    *RDF with Arrays* model.

    ``dictionary`` lets graphs share one ID space (every graph of a
    :class:`~repro.rdf.dataset.Dataset` shares the dataset's dictionary
    so the WAL can journal one assignment stream); a standalone graph
    interns into its own.

    >>> g = Graph()
    >>> from repro.rdf import URI, Literal
    >>> _ = g.add(URI("ex:s"), URI("ex:p"), Literal(1))
    >>> len(g)
    1
    """

    #: Marker the engine's ID-space BGP fast path keys on.
    supports_id_space = True

    def __init__(self, name=None, dictionary=None):
        #: Optional graph URI (named graphs in a Dataset).
        self.name = name
        self._dict = dictionary if dictionary is not None \
            else TermDictionary()
        self._idx_spo = PermutationIndex((0, 1, 2))
        self._idx_pos = PermutationIndex((1, 2, 0))
        self._idx_osp = PermutationIndex((2, 0, 1))
        #: Pending delta: adds as an ordered set (dict keys), removes
        #: of base rows as a set; a row is never in both.
        self._pending_add: Dict[Tuple[int, int, int], None] = {}
        self._pending_del: Set[Tuple[int, int, int]] = set()
        self._size = 0
        self._mutations = 0
        self._flushes = 0
        #: Fault-injection plan (set through Dataset.set_faults);
        #: consolidation honors its "consolidate" crash/latency point.
        self.faults = None
        self._frozen_version = None
        self._frozen_key = None
        self.statistics = GraphStatistics(self)
        # incrementally maintained cardinality counters (ID-keyed)
        self._prop_counts: Dict[int, int] = {}
        self._prop_subjects: Dict[int, Dict[int, int]] = {}
        self._prop_values: Dict[int, Dict[int, int]] = {}
        self._subject_counts: Dict[int, int] = {}
        self._value_counts: Dict[int, int] = {}

    @property
    def term_dictionary(self):
        return self._dict

    def term_list(self):
        """Decode table of the live dictionary (see
        :meth:`GraphVersion.term_list` for the snapshot-pinned twin)."""
        return self._dict.term_list()

    def __len__(self):
        version = _ambient_version(self)
        if version is not None:
            return version.size
        return self._size

    def __iter__(self):
        return self.triples()

    def __contains__(self, triple):
        version = _ambient_version(self)
        if version is not None:
            row = tuple(
                version.try_encode(component) for component in
                (triple[0], triple[1], triple[2])
            )
            return None not in row and version._contains_row(row)
        row = self._try_row(triple[0], triple[1], triple[2])
        return row is not None and self._contains_row(row)

    # -- versioning ---------------------------------------------------------------

    def freeze(self):
        """Capture the current logical state as a :class:`GraphVersion`.

        Called by the single writer (or under the dataset's publish
        lock), never concurrently with mutation.  When the overlay has
        outgrown the publish cap it is consolidated first so version
        captures stay O(sqrt(n)); an unchanged graph returns the cached
        version so read-mostly workloads publish for free.
        """
        key = (self._mutations, self._flushes)
        cached = self._frozen_version
        if cached is not None and self._frozen_key == key:
            return cached
        if len(self._pending_add) + len(self._pending_del) >= \
                self._publish_cap():
            self._flush()
        version = GraphVersion(self)
        self._frozen_version = version
        self._frozen_key = (self._mutations, self._flushes)
        return version

    def _publish_cap(self):
        return max(FLUSH_FLOOR, isqrt(len(self._idx_spo)))

    # -- mutation -----------------------------------------------------------------

    def add(self, subject, prop, value):
        """Insert one triple; returns self for chaining.

        Duplicate insertions are silently ignored (a graph is a set).
        """
        self._validate(subject, prop, value)
        before = len(self._dict)
        row = (
            self._dict.encode(subject),
            self._dict.encode(prop),
            self._dict.encode(value),
        )
        if len(self._dict) == before:
            # every term already known: the row may exist
            if row in self._pending_del:
                self._pending_del.remove(row)
                self._row_added(row)
                return self
            if row in self._pending_add or \
                    self._idx_spo.find_row(row) >= 0:
                return self
        self._pending_add[row] = None
        self._row_added(row)
        self._maybe_flush()
        return self

    def add_triple(self, triple):
        return self.add(triple[0], triple[1], triple[2])

    def remove(self, subject, prop, value):
        """Remove one triple; returns True when it was present."""
        row = self._try_row(subject, prop, value)
        if row is None:
            return False
        if row in self._pending_add:
            del self._pending_add[row]
            self._row_removed(row)
            return True
        if row in self._pending_del:
            return False
        if self._idx_spo.find_row(row) < 0:
            return False
        self._pending_del.add(row)
        self._row_removed(row)
        self._maybe_flush()
        return True

    def remove_matching(self, subject=None, prop=None, value=None):
        """Remove every triple matching the pattern; returns the count."""
        doomed = list(self.triples(subject, prop, value))
        for triple in doomed:
            self.remove(*triple)
        return len(doomed)

    def clear(self):
        """Drop every triple (dictionary assignments are append-only
        and survive; compaction reclaims them, see ``Dataset``).

        Swap-in of fresh indexes/overlay containers: pinned versions
        keep the old instances.
        """
        self._idx_spo = PermutationIndex((0, 1, 2))
        self._idx_pos = PermutationIndex((1, 2, 0))
        self._idx_osp = PermutationIndex((2, 0, 1))
        self._pending_add = {}
        self._pending_del = set()
        self._size = 0
        self._mutations += 1
        self._prop_counts.clear()
        self._prop_subjects.clear()
        self._prop_values.clear()
        self._subject_counts.clear()
        self._value_counts.clear()

    # -- reading ------------------------------------------------------------------

    def triples(self, subject=None, prop=None, value=None) -> Iterator[Triple]:
        """Iterate triples matching a pattern (None = wildcard).

        The constants always form a *prefix* of one of the three
        permutation indexes, so every lookup with at least one bound
        component is a binary-searched run, never a full scan.  The
        pending delta is merged on the fly; mutating the graph while
        iterating raises RuntimeError (as dict iteration did before).
        Under an ambient MVCC snapshot the iteration reads the pinned
        immutable version instead of the live structures.
        """
        version = _ambient_version(self)
        if version is not None:
            yield from version.triples(subject, prop, value)
            return
        ids = []
        for term in (subject, prop, value):
            if term is None:
                ids.append(None)
                continue
            tid = self._dict.try_encode(term)
            if tid is None:
                return
            ids.append(tid)
        terms = self._dict.term_list()
        generation = self._mutations
        for s, p, o in self._scan_ids(ids[0], ids[1], ids[2]):
            if self._mutations != generation:
                raise RuntimeError("graph changed size during iteration")
            yield Triple(terms[s], terms[p], terms[o])

    def count(self, subject=None, prop=None, value=None):
        """Number of triples matching the pattern, computed from run
        bounds without listing."""
        version = _ambient_version(self)
        if version is not None:
            if subject is None and prop is None and value is None:
                return version.size
            row = []
            for term in (subject, prop, value):
                if term is None:
                    row.append(None)
                    continue
                tid = version.try_encode(term)
                if tid is None:
                    return 0
                row.append(tid)
            return version._count_ids(row[0], row[1], row[2])
        if subject is None and prop is None and value is None:
            return self._size
        if subject is None and value is None:
            return self.statistics.property_count(prop)
        row = []
        for term in (subject, prop, value):
            if term is None:
                row.append(None)
                continue
            tid = self._dict.try_encode(term)
            if tid is None:
                return 0
            row.append(tid)
        return self._count_ids(row[0], row[1], row[2])

    def pattern_count(self, subject=None, prop=None, value=None):
        """Exact run length of a pattern over ground terms.

        This is the cost model's selectivity source: for any pattern
        whose bound components are constants, the estimate is the true
        cardinality read off the matching index run (O(log n)).
        """
        return self.count(subject, prop, value)

    # -- convenience accessors -------------------------------------------

    def subjects(self, prop=None, value=None):
        seen = set()
        for triple in self.triples(None, prop, value):
            if triple.subject not in seen:
                seen.add(triple.subject)
                yield triple.subject

    def values(self, subject=None, prop=None):
        for triple in self.triples(subject, prop, None):
            yield triple.value

    def value(self, subject, prop, default=None):
        """The single value of (subject, prop), or default when absent."""
        for triple in self.triples(subject, prop, None):
            return triple.value
        return default

    def properties(self, subject):
        seen = set()
        for triple in self.triples(subject, None, None):
            if triple.property not in seen:
                seen.add(triple.property)
                yield triple.property

    def update(self, triples):
        """Bulk-insert an iterable of triples; returns self."""
        for triple in triples:
            self.add(triple[0], triple[1], triple[2])
        return self

    def copy(self):
        clone = Graph(name=self.name)
        clone.update(self.triples())
        return clone

    # -- serialization ----------------------------------------------------

    def to_ntriples(self):
        """Serialize as NTriples text (arrays via their reader syntax)."""
        triples = sorted(self.triples(), key=lambda t: t.n3())
        return "\n".join(t.n3() for t in triples) + \
            ("\n" if triples else "")

    def to_turtle(self, prefixes=None):
        """Serialize as Turtle text; see :func:`repro.rdf.serializer`."""
        from repro.rdf.serializer import serialize_turtle
        return serialize_turtle(self, prefixes=prefixes)

    # -- ID-space access (engine fast path, cost model) ---------------------------

    def _ensure_flushed(self):
        """Merge the pending delta so the sorted base is authoritative."""
        if self._pending_add or self._pending_del:
            self._flush()

    def _flush(self):
        faults = self.faults
        if faults is not None:
            faults.at_point("consolidate")
        add = np.array(list(self._pending_add), dtype=np.int64) \
            .reshape(-1, 3)
        keep = None
        if self._pending_del:
            keep = np.ones(len(self._idx_spo), dtype=bool)
            # pending removes always target base rows (removes of
            # pending adds are dropped from the add buffer directly)
            for row in self._pending_del:
                position = self._idx_spo.find_row(row)
                keep[position] = False
        fresh = []
        for index in (self._idx_spo, self._idx_pos, self._idx_osp):
            if keep is not None and index is not self._idx_spo:
                keep_index = np.ones(len(index), dtype=bool)
                for row in self._pending_del:
                    keep_index[index.find_row(row)] = False
                fresh.append(index.merged(add, keep_index))
            else:
                fresh.append(index.merged(add, keep))
        # publish-then-swap: fresh containers are fully built before
        # the single reference assignments below, so readers holding
        # the old instances keep a consistent sorted base
        self._idx_spo, self._idx_pos, self._idx_osp = fresh
        self._pending_add = {}
        self._pending_del = set()
        self._flushes += 1

    def _maybe_flush(self):
        threshold = max(FLUSH_FLOOR, len(self._idx_spo) >> 3)
        if len(self._pending_add) + len(self._pending_del) >= threshold:
            self._flush()

    def _run_arrays(self, s=None, p=None, o=None):
        """Sorted-run column views for constant-bound components.

        Requires a flushed graph (call :meth:`_ensure_flushed` first).
        Returns ``(s_col, p_col, o_col, leading_free)`` where the
        columns are numpy views over the matching run and
        ``leading_free`` is the SPO position (0/1/2) of the run's
        leading unbound component — that column is sorted within the
        run, which merge joins exploit — or None when fully bound.
        """
        index, prefix = _choose_run(
            self._idx_spo, self._idx_pos, self._idx_osp, s, p, o
        )
        lo, hi = index.run_bounds(prefix)
        s_col, p_col, o_col = index.logical_columns(lo, hi)
        leading_free = (
            index.perm[len(prefix)] if len(prefix) < 3 else None
        )
        return s_col, p_col, o_col, leading_free

    def index_stats(self):
        """Footprint and maintenance counters of the ID-space layout."""
        index_bytes = (
            self._idx_spo.nbytes + self._idx_pos.nbytes
            + self._idx_osp.nbytes
        )
        return {
            "triples": int(self._size),
            "terms": len(self._dict),
            "index_bytes": int(index_bytes),
            "pending": len(self._pending_add) + len(self._pending_del),
            "flushes": int(self._flushes),
        }

    def _remap_ids(self, mapping, dictionary):
        """Rewrite every stored ID through ``mapping`` (compaction).

        Builds remapped index instances and swaps them in; versions
        pinned by live snapshots keep the old indexes *and* the old
        dictionary reference, so they stay internally consistent.
        """
        self._ensure_flushed()
        self._idx_spo = self._idx_spo.remapped(mapping)
        self._idx_pos = self._idx_pos.remapped(mapping)
        self._idx_osp = self._idx_osp.remapped(mapping)
        remap = mapping.__getitem__

        def remap_keys(table):
            return {int(remap(key)): value
                    for key, value in table.items()}

        self._prop_counts = remap_keys(self._prop_counts)
        self._prop_subjects = {
            int(remap(pid)): remap_keys(inner)
            for pid, inner in self._prop_subjects.items()
        }
        self._prop_values = {
            int(remap(pid)): remap_keys(inner)
            for pid, inner in self._prop_values.items()
        }
        self._subject_counts = remap_keys(self._subject_counts)
        self._value_counts = remap_keys(self._value_counts)
        self._dict = dictionary
        self._mutations += 1

    # -- internals ---------------------------------------------------------

    def _try_row(self, subject, prop, value):
        s = self._dict.try_encode(subject)
        if s is None:
            return None
        p = self._dict.try_encode(prop)
        if p is None:
            return None
        o = self._dict.try_encode(value)
        if o is None:
            return None
        return (s, p, o)

    def _contains_row(self, row):
        if row in self._pending_add:
            return True
        if row in self._pending_del:
            return False
        return self._idx_spo.find_row(row) >= 0

    def _scan_ids(self, s=None, p=None, o=None):
        """Yield matching (s, p, o) ID rows, merging the pending delta."""
        index, prefix = _choose_run(
            self._idx_spo, self._idx_pos, self._idx_osp, s, p, o
        )
        lo, hi = index.run_bounds(prefix)
        deleted = self._pending_del
        if deleted:
            for row in index.iter_rows(lo, hi):
                if row not in deleted:
                    yield row
        else:
            yield from index.iter_rows(lo, hi)
        if self._pending_add:
            for row in list(self._pending_add):
                if _matches(row, s, p, o):
                    yield row

    def _count_ids(self, s=None, p=None, o=None):
        if not self._pending_add and not self._pending_del:
            index, prefix = _choose_run(
                self._idx_spo, self._idx_pos, self._idx_osp, s, p, o
            )
            if not prefix:
                return self._size
            lo, hi = index.run_bounds(prefix)
            return hi - lo
        return sum(1 for _ in self._scan_ids(s, p, o))

    def _row_added(self, row):
        s, p, o = row
        self._size += 1
        self._mutations += 1
        self._prop_counts[p] = self._prop_counts.get(p, 0) + 1
        _bump(self._prop_subjects.setdefault(p, {}), s)
        _bump(self._prop_values.setdefault(p, {}), o)
        _bump(self._subject_counts, s)
        _bump(self._value_counts, o)

    def _row_removed(self, row):
        s, p, o = row
        self._size -= 1
        self._mutations += 1
        remaining = self._prop_counts[p] - 1
        if remaining:
            self._prop_counts[p] = remaining
        else:
            del self._prop_counts[p]
        for table, key in ((self._prop_subjects, s),
                           (self._prop_values, o)):
            inner = table[p]
            _drop(inner, key)
            if not inner:
                del table[p]
        _drop(self._subject_counts, s)
        _drop(self._value_counts, o)

    @staticmethod
    def _validate(subject, prop, value):
        if not isinstance(subject, (URI, BlankNode)):
            raise SciSparqlError(
                "triple subject must be URI or BlankNode, got %r" % (subject,)
            )
        if not isinstance(prop, URI):
            raise SciSparqlError(
                "triple property must be URI, got %r" % (prop,)
            )
        if not is_term(value):
            raise SciSparqlError(
                "triple value must be an RDF term or array, got %r" % (value,)
            )


def _bump(table, key):
    table[key] = table.get(key, 0) + 1


def _drop(table, key):
    remaining = table[key] - 1
    if remaining:
        table[key] = remaining
    else:
        del table[key]
