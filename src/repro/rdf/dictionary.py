"""Dictionary encoding of RDF terms into dense integer IDs.

Full-in-memory RDF engines gain most of their speed and footprint by
replacing term objects with small integers and querying sorted ID-space
indexes (the k²-triples line of work).  :class:`TermDictionary` is the
interning side of that design: every distinct term — URI, blank node,
literal, or array value — receives a dense ``int`` ID at first sight,
with exact reverse lookup.

IDs are **append-only**: a term, once assigned, keeps its ID for the
lifetime of the dictionary (compaction builds a *new* dictionary and
remaps, see :meth:`repro.rdf.dataset.Dataset.compact_dictionary`).  That
makes the assignment stream journal-able: the WAL persists ``term → id``
records in assignment order, and replay / replication reconstruct a
byte-identical ID space (:mod:`repro.storage.durability`).

The two-phase :meth:`preview` / :meth:`commit` pair exists for the WAL's
write-ahead invariant: an update's fresh assignments are *tentatively*
numbered for the journal record, and only committed into the dictionary
after the record is durably appended — an append that fails (torn write,
injected crash) leaves the dictionary exactly as the durable log
implies.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.exceptions import CorruptionError


class TermDictionary:
    """A bijection between RDF terms and dense integer IDs.

    >>> from repro.rdf.term import URI
    >>> d = TermDictionary()
    >>> d.encode(URI("ex:a"))
    0
    >>> d.encode(URI("ex:b"))
    1
    >>> d.encode(URI("ex:a"))
    0
    >>> d.decode(1)
    URI('ex:b')
    """

    __slots__ = ("_ids", "_terms")

    def __init__(self):
        self._ids: Dict[object, int] = {}
        self._terms: List[object] = []

    def __len__(self):
        return len(self._terms)

    def __contains__(self, term):
        return term in self._ids

    # -- encoding ----------------------------------------------------------------

    def encode(self, term):
        """The ID of ``term``, assigning the next dense ID when new."""
        tid = self._ids.get(term)
        if tid is None:
            tid = len(self._terms)
            self._ids[term] = tid
            self._terms.append(term)
        return tid

    def try_encode(self, term):
        """The ID of ``term`` when already interned, else None."""
        return self._ids.get(term)

    def decode(self, tid):
        """The term assigned to ``tid`` (exact reverse lookup)."""
        return self._terms[tid]

    def term_list(self):
        """The internal ID-ordered term list (treat as read-only).

        Exposed so hot decode loops can index it directly instead of
        paying a method call per cell.
        """
        return self._terms

    # -- two-phase assignment (WAL write-ahead ordering) -------------------------

    def preview(self, terms: Iterable[object]) -> List[Tuple[int, object]]:
        """Tentative ``(id, term)`` assignments for the unseen terms.

        Does not mutate the dictionary; duplicates within ``terms`` get
        one entry.  Pass the result to :meth:`commit` once the journal
        record holding it is durable.
        """
        fresh: List[Tuple[int, object]] = []
        seen: Dict[object, int] = {}
        base = len(self._terms)
        for term in terms:
            if term in self._ids or term in seen:
                continue
            tid = base + len(fresh)
            seen[term] = tid
            fresh.append((tid, term))
        return fresh

    def commit(self, entries: Iterable[Tuple[int, object]]):
        """Apply assignments produced by :meth:`preview`."""
        for tid, term in entries:
            self.bind(term, tid)

    def bind(self, term, tid):
        """Bind ``term`` to exactly ``tid`` (journal replay path).

        The journal logs assignments densely and in order, so a bind
        must either restate an existing assignment or extend the
        dictionary by exactly one ID; anything else means the log and
        the dictionary disagree — corruption, not a state to guess
        around.
        """
        existing = self._ids.get(term)
        if existing is not None:
            if existing != tid:
                raise CorruptionError(
                    "dictionary mismatch: term %r has id %d, journal "
                    "says %d" % (term, existing, tid)
                )
            return existing
        if tid != len(self._terms):
            raise CorruptionError(
                "non-dense dictionary id %d for %r (next id is %d)"
                % (tid, term, len(self._terms))
            )
        self._ids[term] = tid
        self._terms.append(term)
        return tid

    # -- maintenance --------------------------------------------------------------

    def clear(self):
        """Drop every assignment (follower full resync)."""
        self._ids.clear()
        del self._terms[:]

    def stats(self):
        return {"terms": len(self._terms)}

    def __repr__(self):
        return "TermDictionary(%d terms)" % len(self._terms)
