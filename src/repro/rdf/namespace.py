"""Namespace helpers and well-known vocabularies.

A :class:`Namespace` turns attribute access into URI minting::

    >>> FOAF = Namespace("http://xmlns.com/foaf/0.1/")
    >>> FOAF.name
    URI('http://xmlns.com/foaf/0.1/name')
"""

from __future__ import annotations

from repro.rdf.term import URI


class Namespace:
    """A URI prefix that mints full URIs via attribute or item access."""

    def __init__(self, base):
        self._base = base

    @property
    def base(self):
        return self._base

    def __getattr__(self, name):
        if name.startswith("_"):
            raise AttributeError(name)
        return URI(self._base + name)

    def __getitem__(self, name):
        return URI(self._base + name)

    def term(self, name):
        """Mint a URI for names that are not valid Python identifiers."""
        return URI(self._base + name)

    def __contains__(self, uri):
        return isinstance(uri, URI) and uri.value.startswith(self._base)

    def local_name(self, uri):
        """Strip the namespace base from a URI in this namespace."""
        if uri not in self:
            raise ValueError("%r is not in namespace %s" % (uri, self._base))
        return uri.value[len(self._base):]

    def __repr__(self):
        return "Namespace(%r)" % self._base


RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")
FOAF = Namespace("http://xmlns.com/foaf/0.1/")
#: RDF Data Cube vocabulary (dissertation section 2.3.5.2 / 5.3.3).
QB = Namespace("http://purl.org/linked-data/cube#")
#: SDMX measure/dimension helper namespaces used by Data Cube datasets.
SDMX_MEASURE = Namespace("http://purl.org/linked-data/sdmx/2009/measure#")
SDMX_DIMENSION = Namespace("http://purl.org/linked-data/sdmx/2009/dimension#")

#: Prefixes every parser instance knows out of the box.
WELL_KNOWN_PREFIXES = {
    "rdf": RDF.base,
    "rdfs": RDFS.base,
    "xsd": XSD.base,
    "owl": OWL.base,
    "foaf": FOAF.base,
    "qb": QB.base,
    "sdmx-measure": SDMX_MEASURE.base,
    "sdmx-dimension": SDMX_DIMENSION.base,
}
