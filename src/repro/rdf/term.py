"""RDF terms: URIs, blank nodes, and typed literals.

Terms are immutable value objects with content-based equality, so they can
be used directly as dictionary keys in the graph indexes.  In the *RDF with
Arrays* model the value position of a triple may also hold a
:class:`repro.arrays.NumericArray` or :class:`repro.arrays.ArrayProxy`;
those classes live in :mod:`repro.arrays` and are duck-typed here through
:func:`is_term`.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Union


_XSD = "http://www.w3.org/2001/XMLSchema#"


class URI:
    """A URI reference identifying a node or an edge class.

    >>> URI("http://example.org/alice")
    URI('http://example.org/alice')
    """

    __slots__ = ("value",)

    def __init__(self, value):
        if not isinstance(value, str):
            raise TypeError("URI value must be a string, got %r" % (value,))
        object.__setattr__(self, "value", value)

    def __setattr__(self, name, value):
        raise AttributeError("URI is immutable")

    def __eq__(self, other):
        return isinstance(other, URI) and self.value == other.value

    def __hash__(self):
        return hash(("URI", self.value))

    def __repr__(self):
        return "URI(%r)" % self.value

    def __str__(self):
        return self.value

    def n3(self):
        """Return the NTriples serialization, e.g. ``<http://...>``."""
        return "<%s>" % self.value


class BlankNode:
    """A blank node, unique within the graph (or union) it belongs to.

    Blank nodes compare equal only when their labels match; fresh anonymous
    nodes get process-unique labels from an internal counter.
    """

    __slots__ = ("label",)

    _counter = 0

    def __init__(self, label=None):
        if label is None:
            BlankNode._counter += 1
            label = "b%d" % BlankNode._counter
        object.__setattr__(self, "label", label)

    def __setattr__(self, name, value):
        raise AttributeError("BlankNode is immutable")

    def __eq__(self, other):
        return isinstance(other, BlankNode) and self.label == other.label

    def __hash__(self):
        return hash(("BlankNode", self.label))

    def __repr__(self):
        return "BlankNode(%r)" % self.label

    def __str__(self):
        return "_:%s" % self.label

    def n3(self):
        return "_:%s" % self.label


class Literal:
    """A typed RDF literal.

    The native Python value is stored alongside the datatype URI so that
    query arithmetic does not re-parse lexical forms.  Plain strings map to
    ``xsd:string``; an optional language tag makes a language-tagged string
    (whose datatype is ``rdf:langString`` per RDF 1.1).

    >>> Literal(42).datatype
    URI('http://www.w3.org/2001/XMLSchema#integer')
    >>> Literal("chat", lang="fr").lang
    'fr'
    """

    __slots__ = ("value", "datatype", "lang")

    #: Mapping from Python types to default XSD datatypes.
    _DEFAULT_TYPES = {
        bool: URI(_XSD + "boolean"),
        int: URI(_XSD + "integer"),
        float: URI(_XSD + "double"),
        str: URI(_XSD + "string"),
    }

    LANG_STRING = URI("http://www.w3.org/1999/02/22-rdf-syntax-ns#langString")

    def __init__(self, value, datatype=None, lang=None):
        if lang is not None:
            if not isinstance(value, str):
                raise TypeError("language-tagged literal value must be str")
            datatype = Literal.LANG_STRING
        elif datatype is None:
            try:
                # bool must be checked before int (bool is an int subclass)
                key = bool if isinstance(value, bool) else type(value)
                datatype = Literal._DEFAULT_TYPES[key]
            except KeyError:
                raise TypeError(
                    "no default datatype for Python value %r" % (value,)
                )
        elif isinstance(datatype, str):
            datatype = URI(datatype)
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "datatype", datatype)
        object.__setattr__(self, "lang", lang)

    def __setattr__(self, name, value):
        raise AttributeError("Literal is immutable")

    def __eq__(self, other):
        return (
            isinstance(other, Literal)
            and self.value == other.value
            and type(self.value) is type(other.value)
            and self.datatype == other.datatype
            and self.lang == other.lang
        )

    def __hash__(self):
        return hash(("Literal", str(self.value), self.datatype, self.lang))

    def __repr__(self):
        if self.lang:
            return "Literal(%r, lang=%r)" % (self.value, self.lang)
        return "Literal(%r, %r)" % (self.value, self.datatype.value)

    def __str__(self):
        return self.lexical_form()

    def lexical_form(self):
        """Return the canonical lexical form of the value."""
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        return str(self.value)

    def n3(self):
        escaped = (
            self.lexical_form()
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        if self.lang:
            return '"%s"@%s' % (escaped, self.lang)
        if self.datatype == Literal._DEFAULT_TYPES[str]:
            return '"%s"' % escaped
        return '"%s"^^%s' % (escaped, self.datatype.n3())

    def is_numeric(self):
        """True when the literal holds a number usable in arithmetic."""
        return isinstance(self.value, (int, float)) and not isinstance(
            self.value, bool
        )

    @staticmethod
    def from_lexical(lexical, datatype):
        """Parse a lexical form under a datatype URI into a Literal.

        Unknown datatypes keep the raw string value so no information is
        lost (the literal is still comparable and serializable).
        """
        if isinstance(datatype, str):
            datatype = URI(datatype)
        name = datatype.value
        if name.startswith(_XSD):
            local = name[len(_XSD):]
            if local in ("integer", "int", "long", "short", "byte",
                         "nonNegativeInteger", "positiveInteger",
                         "negativeInteger", "nonPositiveInteger",
                         "unsignedInt", "unsignedLong", "unsignedShort",
                         "unsignedByte"):
                return Literal(int(lexical), datatype)
            if local in ("double", "float", "decimal"):
                return Literal(float(lexical), datatype)
            if local == "boolean":
                if lexical in ("true", "1"):
                    return Literal(True, datatype)
                if lexical in ("false", "0"):
                    return Literal(False, datatype)
                raise ValueError("invalid xsd:boolean %r" % lexical)
            if local == "string":
                return Literal(lexical)
        return Literal(lexical, datatype)


#: A term in subject or property position is always URI or BlankNode
#: (properties: URI only); values may additionally be literals or arrays.
Term = Union[URI, BlankNode, Literal]


class Triple(NamedTuple):
    """A (subject, property, value) statement.

    The paper prefers "value" over "object" for the third component because
    in RDF with Arrays it frequently holds literals or arrays.
    """

    subject: object
    property: object
    value: object

    def n3(self):
        return "%s %s %s ." % (
            _n3(self.subject), _n3(self.property), _n3(self.value)
        )


def _n3(term):
    n3 = getattr(term, "n3", None)
    if n3 is not None:
        return n3()
    return repr(term)


def is_term(obj):
    """True for any value allowed in a triple component.

    Accepts the three RDF term classes plus anything exposing an
    ``is_rdf_array_value`` marker (NumericArray and ArrayProxy), keeping
    this module free of an import cycle with :mod:`repro.arrays`.
    """
    return isinstance(obj, (URI, BlankNode, Literal)) or getattr(
        obj, "is_rdf_array_value", False
    )


def term_key(term):
    """A sort key giving SPARQL's ordering across term kinds.

    Order: unbound < blank nodes < URIs < literals (by value within
    comparable types, else by lexical form) < arrays.
    """
    if term is None:
        return (0,)
    if isinstance(term, BlankNode):
        return (1, term.label)
    if isinstance(term, URI):
        return (2, term.value)
    if isinstance(term, Literal):
        value = term.value
        if isinstance(value, bool):
            return (3, 1, "", int(value))
        if isinstance(value, (int, float)):
            return (3, 0, "", float(value))
        return (3, 2, term.lexical_form(), 0.0)
    # arrays sort last, by their repr (stable, rarely-used path)
    return (4, repr(term))
