"""RDF data model: terms, namespaces, graphs, and datasets.

This subpackage implements the *RDF with Arrays* data model from the paper:
the standard RDF graph model where triple values may additionally be numeric
multidimensional arrays (:class:`repro.arrays.NumericArray`) or lazy proxies
for externally stored arrays (:class:`repro.arrays.ArrayProxy`).
"""

from repro.rdf.term import (
    URI,
    BlankNode,
    Literal,
    Term,
    Triple,
    is_term,
    term_key,
)
from repro.rdf.namespace import Namespace, RDF, RDFS, XSD, FOAF, QB, OWL
from repro.rdf.dictionary import TermDictionary
from repro.rdf.graph import Graph, GraphStatistics
from repro.rdf.hashgraph import HashIndexGraph
from repro.rdf.dataset import Dataset

__all__ = [
    "URI",
    "BlankNode",
    "Literal",
    "Term",
    "Triple",
    "is_term",
    "term_key",
    "Namespace",
    "RDF",
    "RDFS",
    "XSD",
    "FOAF",
    "QB",
    "OWL",
    "Graph",
    "GraphStatistics",
    "HashIndexGraph",
    "TermDictionary",
    "Dataset",
]
