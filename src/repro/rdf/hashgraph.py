"""The legacy hash-index triple store (term objects, dict-of-dict-of-set).

This is the original in-memory :class:`~repro.rdf.graph.Graph`
implementation before the engine moved to dictionary-encoded IDs and
sorted permutation indexes.  It is kept, unchanged in behaviour, for two
jobs:

- **parity oracle** — the property tests in
  ``tests/test_graph_parity_property.py`` drive random interleaved
  add/remove sequences and pattern queries against both stores and
  require identical observable state;
- **performance baseline** — ``benchmarks/bench_exp8_bgp.py`` runs the
  same BGP workloads over both stores to measure the ID-space speedup
  (``SSDM.with_triple_store(HashIndexGraph())`` forces the per-row
  interpreter path, since this class advertises no ID space).
"""

from __future__ import annotations

from typing import Dict, Iterator, Set

from repro.exceptions import SciSparqlError
from repro.rdf.term import BlankNode, Literal, Triple, URI, is_term


class HashGraphStatistics:
    """Cardinality statistics computed from the hash indexes.

    ``distinct_subjects`` / ``distinct_values`` recompute set unions
    over the POS index per call — the cost the ID graph's maintained
    counters exist to avoid.
    """

    def __init__(self, graph):
        self._graph = graph

    @property
    def triple_count(self):
        return len(self._graph)

    def property_count(self, prop):
        index = self._graph._pos.get(prop)
        if index is None:
            return 0
        return sum(len(subjects) for subjects in index.values())

    def distinct_subjects(self, prop=None):
        if prop is None:
            return len(self._graph._spo)
        index = self._graph._pos.get(prop)
        if index is None:
            return 0
        subjects = set()
        for subject_set in index.values():
            subjects.update(subject_set)
        return len(subjects)

    def distinct_values(self, prop=None):
        if prop is None:
            return len(self._graph._osp)
        index = self._graph._pos.get(prop)
        if index is None:
            return 0
        return len(index)

    def fanout(self, prop):
        count = self.property_count(prop)
        subjects = self.distinct_subjects(prop)
        if subjects == 0:
            return 1.0
        return count / subjects

    def fanin(self, prop):
        count = self.property_count(prop)
        values = self.distinct_values(prop)
        if values == 0:
            return 1.0
        return count / values


class HashIndexGraph:
    """A mutable set of RDF triples with hash indexes on all access paths."""

    def __init__(self, name=None):
        self.name = name
        self._spo: Dict[object, Dict[object, Set[object]]] = {}
        self._pos: Dict[object, Dict[object, Set[object]]] = {}
        self._osp: Dict[object, Dict[object, Set[object]]] = {}
        self._size = 0
        self.statistics = HashGraphStatistics(self)

    def __len__(self):
        return self._size

    def __iter__(self):
        return self.triples()

    def __contains__(self, triple):
        subject, prop, value = triple
        values = self._spo.get(subject, {}).get(prop)
        return values is not None and value in values

    def add(self, subject, prop, value):
        self._validate(subject, prop, value)
        if self._insert(self._spo, subject, prop, value):
            self._insert(self._pos, prop, value, subject)
            self._insert(self._osp, value, subject, prop)
            self._size += 1
        return self

    def add_triple(self, triple):
        return self.add(triple[0], triple[1], triple[2])

    def remove(self, subject, prop, value):
        if not self._delete(self._spo, subject, prop, value):
            return False
        self._delete(self._pos, prop, value, subject)
        self._delete(self._osp, value, subject, prop)
        self._size -= 1
        return True

    def remove_matching(self, subject=None, prop=None, value=None):
        doomed = list(self.triples(subject, prop, value))
        for triple in doomed:
            self.remove(*triple)
        return len(doomed)

    def clear(self):
        self._spo.clear()
        self._pos.clear()
        self._osp.clear()
        self._size = 0

    def triples(self, subject=None, prop=None, value=None) -> Iterator[Triple]:
        if subject is not None:
            by_prop = self._spo.get(subject)
            if by_prop is None:
                return
            if prop is not None:
                values = by_prop.get(prop)
                if values is None:
                    return
                if value is not None:
                    if value in values:
                        yield Triple(subject, prop, value)
                    return
                for each in values:
                    yield Triple(subject, prop, each)
                return
            for each_prop, values in by_prop.items():
                if value is not None:
                    if value in values:
                        yield Triple(subject, each_prop, value)
                    continue
                for each in values:
                    yield Triple(subject, each_prop, each)
            return
        if prop is not None:
            by_value = self._pos.get(prop)
            if by_value is None:
                return
            if value is not None:
                for each_subject in by_value.get(value, ()):
                    yield Triple(each_subject, prop, value)
                return
            for each_value, subjects in by_value.items():
                for each_subject in subjects:
                    yield Triple(each_subject, prop, each_value)
            return
        if value is not None:
            by_subject = self._osp.get(value)
            if by_subject is None:
                return
            for each_subject, props in by_subject.items():
                for each_prop in props:
                    yield Triple(each_subject, each_prop, value)
            return
        for each_subject, by_prop in self._spo.items():
            for each_prop, values in by_prop.items():
                for each_value in values:
                    yield Triple(each_subject, each_prop, each_value)

    def count(self, subject=None, prop=None, value=None):
        if subject is None and prop is None and value is None:
            return self._size
        if subject is None and value is None:
            return self.statistics.property_count(prop)
        return sum(1 for _ in self.triples(subject, prop, value))

    # -- convenience accessors -------------------------------------------

    def subjects(self, prop=None, value=None):
        seen = set()
        for triple in self.triples(None, prop, value):
            if triple.subject not in seen:
                seen.add(triple.subject)
                yield triple.subject

    def values(self, subject=None, prop=None):
        for triple in self.triples(subject, prop, None):
            yield triple.value

    def value(self, subject, prop, default=None):
        for triple in self.triples(subject, prop, None):
            return triple.value
        return default

    def properties(self, subject):
        by_prop = self._spo.get(subject, {})
        return iter(by_prop.keys())

    def update(self, triples):
        for triple in triples:
            self.add(triple[0], triple[1], triple[2])
        return self

    def copy(self):
        clone = HashIndexGraph(name=self.name)
        clone.update(self.triples())
        return clone

    # -- serialization ----------------------------------------------------

    def to_ntriples(self):
        return "\n".join(t.n3() for t in sorted(
            self.triples(), key=lambda t: t.n3())) + ("\n" if self._size else "")

    def to_turtle(self, prefixes=None):
        from repro.rdf.serializer import serialize_turtle
        return serialize_turtle(self, prefixes=prefixes)

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _validate(subject, prop, value):
        if not isinstance(subject, (URI, BlankNode)):
            raise SciSparqlError(
                "triple subject must be URI or BlankNode, got %r" % (subject,)
            )
        if not isinstance(prop, URI):
            raise SciSparqlError(
                "triple property must be URI, got %r" % (prop,)
            )
        if not is_term(value):
            raise SciSparqlError(
                "triple value must be an RDF term or array, got %r" % (value,)
            )

    @staticmethod
    def _insert(index, a, b, c):
        by_b = index.get(a)
        if by_b is None:
            by_b = index[a] = {}
        cs = by_b.get(b)
        if cs is None:
            cs = by_b[b] = set()
        if c in cs:
            return False
        cs.add(c)
        return True

    @staticmethod
    def _delete(index, a, b, c):
        by_b = index.get(a)
        if by_b is None:
            return False
        cs = by_b.get(b)
        if cs is None or c not in cs:
            return False
        cs.remove(c)
        if not cs:
            del by_b[b]
            if not by_b:
                del index[a]
        return True
